(* Tests for the P4Runtime oracle: expectation classification, status
   judgement, state reconciliation, and handling of under-specified
   behaviours (§4.3). *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module State = Switchv_p4runtime.State
module Status = Switchv_p4runtime.Status
module Oracle = Switchv_oracle.Oracle
module Figure2 = Switchv_sai.Figure2

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let info = Figure2.info

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

let vrf n =
  Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 n)) ]
    (single "no_action" [])

let route ?(vrf = 1) ?(prefix = "10.0.0.0/8") () =
  Entry.make ~table:"ipv4_table"
    ~matches:
      [ fm "vrf_id" (Entry.M_exact (bv16 vrf));
        fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string prefix)) ]
    (single "set_nexthop_id" [ bv16 3 ])

(* A perfectly behaving single-update exchange: status OK + consistent
   read-back. *)
let accept oracle u =
  let read_back =
    let s = State.copy (Oracle.observed oracle) in
    (match u.Request.op with
    | Request.Insert -> ignore (State.insert s u.entry)
    | Request.Modify -> ignore (State.modify s u.entry)
    | Request.Delete -> ignore (State.delete s u.entry));
    { Request.entries = State.all s }
  in
  Oracle.judge_batch oracle [ u ] { Request.statuses = [ Status.ok ] } ~read_back

let reject ?(code = Status.Invalid_argument) oracle u =
  Oracle.judge_batch oracle [ u ]
    { Request.statuses = [ Status.make code "rejected" ] }
    ~read_back:{ Request.entries = State.all (Oracle.observed oracle) }

(* --- classification ----------------------------------------------------------- *)

let test_classify_valid_insert () =
  let oracle = Oracle.create info in
  check_bool "fresh valid insert must be accepted" true
    (Oracle.classify oracle (Request.insert (vrf 1)) = Oracle.Must_accept)

let test_classify_invalid () =
  let oracle = Oracle.create info in
  check_bool "constraint violation must be rejected" true
    (match Oracle.classify oracle (Request.insert (vrf 0)) with
    | Oracle.Must_reject _ -> true
    | _ -> false);
  check_bool "dangling reference must be rejected" true
    (match Oracle.classify oracle (Request.insert (route ~vrf:5 ())) with
    | Oracle.Must_reject _ -> true
    | _ -> false);
  check_bool "delete of non-existent must be rejected" true
    (match Oracle.classify oracle (Request.delete (vrf 1)) with
    | Oracle.Must_reject _ -> true
    | _ -> false)

let test_classify_duplicate_and_referenced () =
  let oracle = Oracle.create info in
  ignore (accept oracle (Request.insert (vrf 1)));
  ignore (accept oracle (Request.insert (route ())));
  check_bool "duplicate insert must be rejected" true
    (match Oracle.classify oracle (Request.insert (vrf 1)) with
    | Oracle.Must_reject _ -> true
    | _ -> false);
  check_bool "delete of referenced vrf must be rejected" true
    (match Oracle.classify oracle (Request.delete (vrf 1)) with
    | Oracle.Must_reject _ -> true
    | _ -> false);
  check_bool "delete of unreferenced route must be accepted" true
    (Oracle.classify oracle (Request.delete (route ())) = Oracle.Must_accept)

let test_classify_capacity () =
  let oracle = Oracle.create info in
  (* vrf_table size is 64; fill it. *)
  for i = 1 to 64 do
    ignore (accept oracle (Request.insert (vrf i)))
  done;
  check_bool "insert beyond guarantee is may-either" true
    (match Oracle.classify oracle (Request.insert (vrf 65)) with
    | Oracle.May_either _ -> true
    | _ -> false)

(* --- judgement ------------------------------------------------------------------ *)

let test_clean_exchange_no_incidents () =
  let oracle = Oracle.create info in
  check_int "accepting a valid insert is fine" 0
    (List.length (accept oracle (Request.insert (vrf 1))));
  check_int "rejecting an invalid insert is fine" 0
    (List.length (reject oracle (Request.insert (vrf 0))))

let test_rejecting_valid_flagged () =
  let oracle = Oracle.create info in
  let incidents = reject oracle (Request.insert (vrf 1)) in
  check_bool "status violation reported" true
    (List.exists (fun (i : Oracle.incident) -> i.inc_kind = `Status_violation) incidents)

let test_accepting_invalid_flagged () =
  let oracle = Oracle.create info in
  let u = Request.insert (vrf 0) in
  let read_back =
    let s = State.copy (Oracle.observed oracle) in
    ignore (State.insert s u.entry);
    { Request.entries = State.all s }
  in
  let incidents =
    Oracle.judge_batch oracle [ u ] { Request.statuses = [ Status.ok ] } ~read_back
  in
  check_bool "status violation reported" true
    (List.exists (fun (i : Oracle.incident) -> i.inc_kind = `Status_violation) incidents)

let test_state_divergence_flagged () =
  let oracle = Oracle.create info in
  (* Switch claims OK but the entry never shows up in the read-back. *)
  let incidents =
    Oracle.judge_batch oracle
      [ Request.insert (vrf 1) ]
      { Request.statuses = [ Status.ok ] }
      ~read_back:{ Request.entries = [] }
  in
  check_bool "state divergence reported" true
    (List.exists (fun (i : Oracle.incident) -> i.inc_kind = `State_divergence) incidents)

let test_modify_divergence_flagged () =
  let oracle = Oracle.create info in
  ignore (accept oracle (Request.insert (vrf 1)));
  ignore (accept oracle (Request.insert (route ())));
  (* Switch says OK to a modify but keeps the old action (the paper's
     "MODIFY leaves old action parameters unchanged" bug). *)
  let modified = { (route ()) with Entry.e_action = single "drop" [] } in
  let incidents =
    Oracle.judge_batch oracle
      [ Request.modify modified ]
      { Request.statuses = [ Status.ok ] }
      ~read_back:{ Request.entries = State.all (Oracle.observed oracle) }
  in
  check_bool "divergence on stale action" true
    (List.exists (fun (i : Oracle.incident) -> i.inc_kind = `State_divergence) incidents)

let test_unresponsive_flagged () =
  let oracle = Oracle.create info in
  let us = [ Request.insert (vrf 1); Request.insert (vrf 2) ] in
  let incidents =
    Oracle.judge_batch oracle us
      { Request.statuses =
          [ Status.make Status.Unavailable "down"; Status.make Status.Unavailable "down" ] }
      ~read_back:{ Request.entries = [] }
  in
  check_bool "unresponsive reported" true
    (List.exists (fun (i : Oracle.incident) -> i.inc_kind = `Unresponsive) incidents)

let test_resource_rejection_at_capacity_ok () =
  let oracle = Oracle.create info in
  for i = 1 to 64 do
    ignore (accept oracle (Request.insert (vrf i)))
  done;
  check_int "rejection beyond guarantee tolerated" 0
    (List.length (reject ~code:Status.Resource_exhausted oracle (Request.insert (vrf 65))));
  (* And acceptance beyond the guarantee is fine too (under-specified). *)
  check_int "acceptance beyond guarantee tolerated" 0
    (List.length (accept oracle (Request.insert (vrf 65))))

let test_mid_batch_capacity_tolerated () =
  (* A batch that could take a table past its guarantee may have any of its
     inserts rejected (execution order unspecified). vrf size 64: install
     60, then a batch of 8 where the last ones get RESOURCE_EXHAUSTED. *)
  let oracle = Oracle.create info in
  for i = 1 to 60 do
    ignore (accept oracle (Request.insert (vrf i)))
  done;
  let us = List.init 8 (fun i -> Request.insert (vrf (61 + i))) in
  let statuses =
    List.init 8 (fun i ->
        if i < 4 then Status.ok else Status.make Status.Resource_exhausted "full")
  in
  let read_back =
    let s = State.copy (Oracle.observed oracle) in
    List.iteri (fun i u -> if i < 4 then ignore (State.insert s u.Request.entry)) us;
    { Request.entries = State.all s }
  in
  let incidents = Oracle.judge_batch oracle us { Request.statuses } ~read_back in
  check_int "no incidents for mid-batch capacity" 0 (List.length incidents)

let test_oracle_adopts_switch_state () =
  (* After judging, the oracle proceeds from the switch's claimed state
     (§4.3: forget the prior state). *)
  let oracle = Oracle.create info in
  ignore
    (Oracle.judge_batch oracle
       [ Request.insert (vrf 1) ]
       { Request.statuses = [ Status.ok ] }
       ~read_back:{ Request.entries = [ vrf 1; vrf 2 ] });
  (* vrf 2 appeared out of nowhere (divergence flagged), but the oracle now
     treats it as present: inserting it again must be a duplicate. *)
  check_bool "baseline adopted" true
    (match Oracle.classify oracle (Request.insert (vrf 2)) with
    | Oracle.Must_reject _ -> true
    | _ -> false)

(* Property: judgement completeness. Take a clean exchange over a batch of
   decisively-classified updates; flipping any single status (or dropping
   any single entry from the read-back) must produce an incident. *)
let prop_single_corruption_detected =
  QCheck.Test.make ~name:"any single corruption is flagged" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 0xFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Switchv_bitvec.Rng.create seed in
      let n = 3 + Switchv_bitvec.Rng.int rng 5 in
      (* Batch: n fresh vrf inserts (must-accept) + one vrf-0 insert
         (must-reject). *)
      let updates =
        List.init n (fun i -> Request.insert (vrf (i + 1)))
        @ [ Request.insert (vrf 0) ]
      in
      let honest_statuses =
        List.init n (fun _ -> Status.ok) @ [ Status.make Status.Invalid_argument "bad" ]
      in
      let honest_read =
        { Request.entries = List.init n (fun i -> vrf (i + 1)) }
      in
      (* Honest exchange: clean. *)
      let clean =
        Oracle.judge_batch (Oracle.create info) updates
          { Request.statuses = honest_statuses } ~read_back:honest_read
      in
      if clean <> [] then false
      else begin
        (* Flip one status. *)
        let k = Switchv_bitvec.Rng.int rng (n + 1) in
        let flipped =
          List.mapi
            (fun i s ->
              if i <> k then s
              else if Status.is_ok s then Status.make Status.Unknown "flipped"
              else Status.ok)
            honest_statuses
        in
        (* The read-back stays consistent with the flipped statuses, so the
           corruption is visible only through the status discipline. *)
        let read =
          { Request.entries =
              List.filteri (fun i _ -> i <> k) (List.init n (fun i -> vrf (i + 1)))
              @ (if k = n then [ vrf 0 ] else []) }
        in
        let incidents =
          Oracle.judge_batch (Oracle.create info) updates
            { Request.statuses = flipped } ~read_back:read
        in
        incidents <> []
      end)

let prop_readback_corruption_detected =
  QCheck.Test.make ~name:"read-back omissions are flagged" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 0xFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Switchv_bitvec.Rng.create seed in
      let n = 2 + Switchv_bitvec.Rng.int rng 6 in
      let updates = List.init n (fun i -> Request.insert (vrf (i + 1))) in
      let statuses = List.init n (fun _ -> Status.ok) in
      let k = Switchv_bitvec.Rng.int rng n in
      let read =
        { Request.entries =
            List.filteri (fun i _ -> i <> k) (List.init n (fun i -> vrf (i + 1))) }
      in
      let incidents =
        Oracle.judge_batch (Oracle.create info) updates { Request.statuses }
          ~read_back:read
      in
      List.exists (fun (i : Oracle.incident) -> i.inc_kind = `State_divergence) incidents)

(* --- the set-valued data-plane oracle (taint-driven) --------------------------- *)

module Dataplane = Switchv_oracle.Dataplane
module Interp = Switchv_bmv2.Interp
module Analysis = Switchv_analysis.Analysis
module Taint = Switchv_analysis.Taint
module Packet = Switchv_packet.Packet
module Ternary = Switchv_bitvec.Ternary
module Middleblock = Switchv_sai.Middleblock

(* A middleblock state whose route resolves through a 2-member WCMP group:
   member 1 -> rif 1 -> port 7, member 2 -> rif 2 -> port 9. *)
let wcmp_state () =
  let s = State.create () in
  let add e = ignore (State.insert s e) in
  let rif id port =
    add
      (Entry.make ~table:"router_interface_table"
         ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 id)) ]
         (single "set_port_and_src_mac"
            [ bv16 port; Packet.mac_of_string "02:00:00:00:bb:01" ]));
    add
      (Entry.make ~table:"neighbor_table"
         ~matches:
           [ fm "router_interface_id" (Entry.M_exact (bv16 id));
             fm "neighbor_id" (Entry.M_exact (bv16 id)) ]
         (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:01" ]));
    add
      (Entry.make ~table:"nexthop_table"
         ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 id)) ]
         (single "set_ip_nexthop" [ bv16 id; bv16 id ]))
  in
  add (vrf 1);
  rif 1 7;
  rif 2 9;
  add
    (Entry.make ~table:"wcmp_group_table"
       ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
       (Entry.Weighted
          [ ({ Entry.ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 2);
            ({ Entry.ai_name = "set_nexthop_id"; ai_args = [ bv16 2 ] }, 1) ]));
  add
    (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
       ~matches:
         [ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
       (single "set_vrf" [ bv16 1 ]));
  add
    (Entry.make ~table:"l3_admit_table" ~priority:1
       ~matches:
         [ fm "dst_mac"
             (Entry.M_ternary (Ternary.exact (Packet.mac_of_string "02:00:00:00:aa:01"))) ]
       (single "l3_admit" []));
  add
    (Entry.make ~table:"ipv4_table"
       ~matches:
         [ fm "vrf_id" (Entry.M_exact (bv16 1));
           fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.1.0.0/16")) ]
       (single "set_wcmp_group_id" [ bv16 1 ]));
  s

let wcmp_cfg ?(hash_mode = Interp.Seeded 1) () =
  { Interp.program = Middleblock.program; state = wcmp_state ();
    hash_mode; mirror_map = [] }

let wcmp_taint = lazy (Analysis.facts Middleblock.program).Analysis.f_taint

let wcmp_packet ?(dst = "10.1.2.3") () =
  Packet.to_bytes
    { Packet.headers =
        [ Packet.ethernet_frame ~dst:"02:00:00:00:aa:01" ~ether_type:0x0800 ();
          Packet.ipv4_header ~ttl:64 ~src:"192.0.2.1" ~dst ();
          Packet.udp_header ~src_port:1000 ~dst_port:2000 () ];
      payload = "xyz" }

let test_candidate_ports () =
  let dp = Dataplane.create (wcmp_cfg ()) ~taint:(Lazy.force wcmp_taint) in
  check_bool "both member ports, sorted" true
    (Dataplane.candidate_ports dp = [ 7; 9 ])

(* The §c property: for every seed, the switch's member choice stays inside
   the statically-computed candidate set and the set-valued oracle admits
   it without a false positive. *)
let test_seeded_soak () =
  let dp = Dataplane.create (wcmp_cfg ()) ~taint:(Lazy.force wcmp_taint) in
  let bytes = wcmp_packet () in
  for seed = 0 to 199 do
    let cfg = wcmp_cfg ~hash_mode:(Interp.Seeded seed) () in
    let switch = Interp.run cfg ~ingress_port:1 bytes in
    (match switch.Interp.b_egress with
    | Some p ->
        if not (List.mem p (Dataplane.candidate_ports dp)) then
          Alcotest.failf "seed %d egressed outside the candidate set: port %d"
            seed p
    | None -> Alcotest.failf "seed %d dropped a routed packet" seed);
    match Dataplane.judge dp ~ingress_port:1 ~bytes ~switch with
    | Dataplane.Admitted -> ()
    | Dataplane.Diverged _ ->
        Alcotest.failf "seed %d: false positive on a clean switch" seed
  done

(* An egress port outside the member set is a real incident, not noise. *)
let test_out_of_set_diverges () =
  let dp = Dataplane.create (wcmp_cfg ()) ~taint:(Lazy.force wcmp_taint) in
  let bytes = wcmp_packet () in
  let model = Interp.run (wcmp_cfg ~hash_mode:(Interp.Fixed 0) ()) ~ingress_port:1 bytes in
  let rogue = { model with Interp.b_egress = Some 5 } in
  match Dataplane.judge dp ~ingress_port:1 ~bytes ~switch:rogue with
  | Dataplane.Diverged admitted ->
      check_bool "enumeration set is the message" true
        (List.for_all
           (fun (b : Interp.behavior) ->
             match b.Interp.b_egress with Some p -> p = 7 || p = 9 | None -> false)
           admitted)
  | Dataplane.Admitted -> Alcotest.fail "out-of-set egress admitted"

(* Drop where the model forwards escalates and diverges. *)
let test_drop_vs_forward_diverges () =
  let dp = Dataplane.create (wcmp_cfg ()) ~taint:(Lazy.force wcmp_taint) in
  let bytes = wcmp_packet () in
  let model = Interp.run (wcmp_cfg ~hash_mode:(Interp.Fixed 0) ()) ~ingress_port:1 bytes in
  let dropped =
    { model with Interp.b_egress = None; b_punted = false; b_packet = "" }
  in
  match Dataplane.judge dp ~ingress_port:1 ~bytes ~switch:dropped with
  | Dataplane.Diverged _ -> ()
  | Dataplane.Admitted -> Alcotest.fail "drop admitted where the model forwards"

(* On a hash-free program the verdict is plain enumeration, byte for byte:
   a matching behaviour is admitted and a divergence reports exactly the
   single Fixed-0 behaviour. *)
let test_hash_free_exactness () =
  let state = State.create () in
  let add e = ignore (State.insert state e) in
  add (vrf 1);
  add
    (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
       ~matches:
         [ fm "dst_ip"
             (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string "10.0.1.1"))) ]
       (single "set_vrf" [ bv16 1 ]));
  add
    (Entry.make ~table:"ipv4_table"
       ~matches:
         [ fm "vrf_id" (Entry.M_exact (bv16 1));
           fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
       (single "set_nexthop_id" [ bv16 11 ]));
  let cfg =
    { Interp.program = Figure2.program; state; hash_mode = Interp.Seeded 17;
      mirror_map = [] }
  in
  let taint = (Analysis.facts Figure2.program).Analysis.f_taint in
  check_bool "figure2 taint-free" true (Taint.taint_free taint);
  let dp = Dataplane.create cfg ~taint in
  check_bool "no candidates" true (Dataplane.candidate_ports dp = []);
  let bytes = wcmp_packet ~dst:"10.0.1.1" () in
  let honest = Interp.run cfg ~ingress_port:1 bytes in
  (match Dataplane.judge dp ~ingress_port:1 ~bytes ~switch:honest with
  | Dataplane.Admitted -> ()
  | Dataplane.Diverged _ -> Alcotest.fail "honest hash-free behaviour diverged");
  let rogue = { honest with Interp.b_egress = Some 31 } in
  match Dataplane.judge dp ~ingress_port:1 ~bytes ~switch:rogue with
  | Dataplane.Diverged [ only ] ->
      check_bool "divergence reports the Fixed-0 behaviour" true
        (Interp.behavior_equal only honest)
  | Dataplane.Diverged _ -> Alcotest.fail "hash-free divergence set not a singleton"
  | Dataplane.Admitted -> Alcotest.fail "rogue egress admitted on hash-free model"

let () =
  Alcotest.run "oracle"
    [ ("classification",
       [ Alcotest.test_case "valid insert" `Quick test_classify_valid_insert;
         Alcotest.test_case "invalid requests" `Quick test_classify_invalid;
         Alcotest.test_case "duplicates and references" `Quick
           test_classify_duplicate_and_referenced;
         Alcotest.test_case "capacity" `Quick test_classify_capacity ]);
      ("judgement",
       [ Alcotest.test_case "clean exchange" `Quick test_clean_exchange_no_incidents;
         Alcotest.test_case "rejecting valid" `Quick test_rejecting_valid_flagged;
         Alcotest.test_case "accepting invalid" `Quick test_accepting_invalid_flagged;
         Alcotest.test_case "state divergence" `Quick test_state_divergence_flagged;
         Alcotest.test_case "stale modify" `Quick test_modify_divergence_flagged;
         Alcotest.test_case "unresponsive" `Quick test_unresponsive_flagged;
         Alcotest.test_case "capacity rejection ok" `Quick
           test_resource_rejection_at_capacity_ok;
         Alcotest.test_case "mid-batch capacity" `Quick test_mid_batch_capacity_tolerated;
         Alcotest.test_case "adopts switch state" `Quick test_oracle_adopts_switch_state ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_single_corruption_detected;
         QCheck_alcotest.to_alcotest prop_readback_corruption_detected ]);
      ("dataplane",
       [ Alcotest.test_case "candidate ports" `Quick test_candidate_ports;
         Alcotest.test_case "seeded soak admits" `Quick test_seeded_soak;
         Alcotest.test_case "out-of-set diverges" `Quick test_out_of_set_diverges;
         Alcotest.test_case "drop vs forward diverges" `Quick
           test_drop_vs_forward_diverges;
         Alcotest.test_case "hash-free exactness" `Quick test_hash_free_exactness ]) ]
