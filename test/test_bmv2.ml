(* Tests for the reference P4 interpreter: parsing, matching semantics
   (exact / LPM / ternary / priority), action execution, TTL handling,
   punt/mirror, WCMP enumeration, and parse-deparse consistency. *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Rng = Switchv_bitvec.Rng
module Packet = Switchv_packet.Packet
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Middleblock = Switchv_sai.Middleblock
module Figure2 = Switchv_sai.Figure2
module Workload = Switchv_sai.Workload

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

(* A fully provisioned middleblock state: admit everything from MAC
   02:..:aa:01, map all IPv4 to VRF 1, route 10.1.0.0/16 -> nexthop 1 ->
   rif 1 (port 7). *)
let provisioned () =
  let s = State.create () in
  let add e = ignore (State.insert s e) in
  add (Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
         (single "no_action" []));
  add (Entry.make ~table:"router_interface_table"
         ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 1)) ]
         (single "set_port_and_src_mac" [ bv16 7; Packet.mac_of_string "02:00:00:00:bb:01" ]));
  add (Entry.make ~table:"neighbor_table"
         ~matches:
           [ fm "router_interface_id" (Entry.M_exact (bv16 1));
             fm "neighbor_id" (Entry.M_exact (bv16 1)) ]
         (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:01" ]));
  add (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 1)) ]
         (single "set_ip_nexthop" [ bv16 1; bv16 1 ]));
  add (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
         (single "set_vrf" [ bv16 1 ]));
  add (Entry.make ~table:"l3_admit_table" ~priority:1
         ~matches:
           [ fm "dst_mac" (Entry.M_ternary (Ternary.exact (Packet.mac_of_string "02:00:00:00:aa:01"))) ]
         (single "l3_admit" []));
  add (Entry.make ~table:"ipv4_table"
         ~matches:
           [ fm "vrf_id" (Entry.M_exact (bv16 1));
             fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.1.0.0/16")) ]
         (single "set_nexthop_id" [ bv16 1 ]));
  s

let cfg ?(state = provisioned ()) ?(mirror_map = []) () =
  { Interp.program = Middleblock.program; state; hash_mode = Interp.Seeded 5; mirror_map }

let packet ?(dst_mac = "02:00:00:00:aa:01") ?(ttl = 64) ~dst () =
  { Packet.headers =
      [ Packet.ethernet_frame ~dst:dst_mac ~ether_type:0x0800 ();
        Packet.ipv4_header ~ttl ~src:"192.0.2.1" ~dst ();
        Packet.udp_header ~src_port:1000 ~dst_port:2000 () ];
    payload = "xyz" }

(* --- forwarding --------------------------------------------------------------- *)

let test_forward () =
  let b = Interp.run_packet (cfg ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_bool "forwarded to rif port" true (b.b_egress = Some 7);
  check_bool "not punted" false b.b_punted

let test_route_miss_drops () =
  let b = Interp.run_packet (cfg ()) ~ingress_port:1 (packet ~dst:"99.1.2.3" ()) in
  check_bool "default action drops" true (b.b_egress = None)

let test_not_admitted_drops () =
  let b =
    Interp.run_packet (cfg ()) ~ingress_port:1
      (packet ~dst_mac:"02:00:00:00:00:99" ~dst:"10.1.2.3" ())
  in
  check_bool "non-admitted packet is not routed" true (b.b_egress = None)

let test_ttl_decrement () =
  let b = Interp.run_packet (cfg ()) ~ingress_port:1 (packet ~ttl:64 ~dst:"10.1.2.3" ()) in
  (* TTL is at offset 14+8 of the output bytes. *)
  check_int "ttl decremented" 63 (Char.code b.b_packet.[22])

let test_ttl_expiry_punts () =
  let b = Interp.run_packet (cfg ()) ~ingress_port:1 (packet ~ttl:1 ~dst:"10.1.2.3" ()) in
  check_bool "dropped" true (b.b_egress = None);
  check_bool "punted to controller" true b.b_punted

let test_dst_mac_rewrite () =
  let b = Interp.run_packet (cfg ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  (* Neighbor entry rewrites the destination MAC. *)
  check_int "dst mac rewritten" 0xcc (Char.code b.b_packet.[4]);
  (* RIF entry rewrites the source MAC. *)
  check_int "src mac rewritten" 0xbb (Char.code b.b_packet.[10])

(* --- LPM precedence ------------------------------------------------------------ *)

let test_lpm_longest_wins () =
  let state = provisioned () in
  (* More-specific /24 to a different nexthop via a second rif/nexthop. *)
  ignore
    (State.insert state
       (Entry.make ~table:"router_interface_table"
          ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 2)) ]
          (single "set_port_and_src_mac" [ bv16 9; Packet.mac_of_string "02:00:00:00:bb:02" ])));
  ignore
    (State.insert state
       (Entry.make ~table:"neighbor_table"
          ~matches:
            [ fm "router_interface_id" (Entry.M_exact (bv16 2));
              fm "neighbor_id" (Entry.M_exact (bv16 2)) ]
          (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:02" ])));
  ignore
    (State.insert state
       (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 2)) ]
          (single "set_ip_nexthop" [ bv16 2; bv16 2 ])));
  ignore
    (State.insert state
       (Entry.make ~table:"ipv4_table"
          ~matches:
            [ fm "vrf_id" (Entry.M_exact (bv16 1));
              fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.1.2.0/24")) ]
          (single "set_nexthop_id" [ bv16 2 ])));
  let c = cfg ~state () in
  let inside = Interp.run_packet c ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_bool "/24 wins inside" true (inside.b_egress = Some 9);
  let outside = Interp.run_packet c ~ingress_port:1 (packet ~dst:"10.1.9.9" ()) in
  check_bool "/16 used outside" true (outside.b_egress = Some 7)

(* --- ternary priority ------------------------------------------------------------ *)

let test_acl_priority () =
  let state = provisioned () in
  let acl prio action dst =
    Entry.make ~table:"acl_ingress_table" ~priority:prio
      ~matches:
        [ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1)));
          fm "dst_ip" (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string dst))) ]
      (single action [])
  in
  ignore (State.insert state (acl 1 "no_action" "10.1.2.3"));
  ignore (State.insert state (acl 10 "drop" "10.1.2.3"));
  let b = Interp.run_packet (cfg ~state ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_bool "higher priority drop wins" true (b.b_egress = None)

(* --- punt and mirror --------------------------------------------------------------- *)

let test_acl_trap_and_copy () =
  let state = provisioned () in
  ignore
    (State.insert state
       (Entry.make ~table:"acl_ingress_table" ~priority:5
          ~matches:
            [ fm "dst_ip" (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string "10.1.2.3"))) ]
          (single "acl_trap" [])));
  let b = Interp.run_packet (cfg ~state ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_bool "trap punts" true b.b_punted;
  check_bool "trap drops" true (b.b_egress = None);
  let state2 = provisioned () in
  ignore
    (State.insert state2
       (Entry.make ~table:"acl_ingress_table" ~priority:5
          ~matches:
            [ fm "dst_ip" (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string "10.1.2.3"))) ]
          (single "acl_copy" [])));
  let b2 = Interp.run_packet (cfg ~state:state2 ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_bool "copy punts" true b2.b_punted;
  check_bool "copy still forwards" true (b2.b_egress = Some 7)

let test_mirror () =
  let state = provisioned () in
  ignore
    (State.insert state
       (Entry.make ~table:"acl_ingress_table" ~priority:5
          ~matches:
            [ fm "dst_ip" (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string "10.1.2.3"))) ]
          (single "acl_mirror" [ bv16 3 ])));
  let b =
    Interp.run_packet (cfg ~state ~mirror_map:[ (3, 12) ] ()) ~ingress_port:1
      (packet ~dst:"10.1.2.3" ())
  in
  check_int "one mirror copy" 1 (List.length b.b_mirrors);
  check_bool "mirrored to mapped port" true (List.mem_assoc 12 b.b_mirrors);
  (* Without a session mapping the mirror is silently dropped. *)
  let b2 = Interp.run_packet (cfg ~state ()) ~ingress_port:1 (packet ~dst:"10.1.2.3" ()) in
  check_int "no mirror without session" 0 (List.length b2.b_mirrors)

(* --- WCMP ---------------------------------------------------------------------------- *)

let wcmp_state () =
  let state = provisioned () in
  ignore
    (State.insert state
       (Entry.make ~table:"router_interface_table"
          ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 2)) ]
          (single "set_port_and_src_mac" [ bv16 9; Packet.mac_of_string "02:00:00:00:bb:02" ])));
  ignore
    (State.insert state
       (Entry.make ~table:"neighbor_table"
          ~matches:
            [ fm "router_interface_id" (Entry.M_exact (bv16 2));
              fm "neighbor_id" (Entry.M_exact (bv16 2)) ]
          (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:02" ])));
  ignore
    (State.insert state
       (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 2)) ]
          (single "set_ip_nexthop" [ bv16 2; bv16 2 ])));
  ignore
    (State.insert state
       (Entry.make ~table:"wcmp_group_table"
          ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
          (Entry.Weighted
             [ ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 3);
               ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 2 ] }, 1) ])));
  ignore
    (State.insert state
       (Entry.make ~table:"ipv4_table"
          ~matches:
            [ fm "vrf_id" (Entry.M_exact (bv16 1));
              fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "20.0.0.0/8")) ]
          (single "set_wcmp_group_id" [ bv16 1 ])));
  state

let test_wcmp_behavior_set () =
  let c = cfg ~state:(wcmp_state ()) () in
  let bytes = Packet.to_bytes (packet ~dst:"20.1.2.3" ()) in
  let behaviors = Interp.enumerate_behaviors c ~ingress_port:1 bytes in
  (* Both members (ports 7 and 9) must appear, even behind weight-3 buckets. *)
  let ports = List.filter_map (fun (b : Interp.behavior) -> b.b_egress) behaviors in
  check_bool "member 1 covered" true (List.mem 7 ports);
  check_bool "member 2 covered" true (List.mem 9 ports);
  check_int "exactly two behaviours" 2 (List.length behaviors);
  (* Any concrete-hash run lies inside the enumerated set. *)
  let concrete = Interp.run c ~ingress_port:1 bytes in
  check_bool "seeded run within the set" true
    (List.exists (Interp.behavior_equal concrete) behaviors)

let test_wcmp_deterministic_per_flow () =
  let c = cfg ~state:(wcmp_state ()) () in
  let bytes = Packet.to_bytes (packet ~dst:"20.1.2.3" ()) in
  let b1 = Interp.run c ~ingress_port:1 bytes in
  let b2 = Interp.run c ~ingress_port:1 bytes in
  check_bool "same flow, same member" true (Interp.behavior_equal b1 b2)

(* --- GRE tunnels (Cerberus/WAN paths) ----------------------------------------------- *)

module Cerberus = Switchv_sai.Cerberus

let cerberus_state () =
  (* Admitted MAC, catch-all VRF, a tunnel route and a decap rule into the
     routed space. *)
  let s = State.create () in
  let add e = ignore (State.insert s e) in
  add (Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
         (single "no_action" []));
  add (Entry.make ~table:"router_interface_table"
         ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 1)) ]
         (single "set_port_and_src_mac" [ bv16 7; Packet.mac_of_string "02:00:00:00:bb:01" ]));
  add (Entry.make ~table:"neighbor_table"
         ~matches:
           [ fm "router_interface_id" (Entry.M_exact (bv16 1));
             fm "neighbor_id" (Entry.M_exact (bv16 1)) ]
         (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:01" ]));
  add (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 1)) ]
         (single "set_ip_nexthop" [ bv16 1; bv16 1 ]));
  add (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
         (single "set_vrf" [ bv16 1 ]));
  add (Entry.make ~table:"l3_admit_table" ~priority:1
         ~matches:
           [ fm "dst_mac" (Entry.M_ternary (Ternary.exact (Packet.mac_of_string "02:00:00:00:aa:01"))) ]
         (single "l3_admit" []));
  add (Entry.make ~table:"tunnel_table" ~matches:[ fm "tunnel_id" (Entry.M_exact (bv16 1)) ]
         (single "set_gre_encap" [ Packet.ipv4_of_string "172.16.0.1" ]));
  add (Entry.make ~table:"ipv4_table"
         ~matches:
           [ fm "vrf_id" (Entry.M_exact (bv16 1));
             fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.2.0.0/16")) ]
         (single "set_tunnel_id" [ bv16 1; bv16 1 ]));
  add (Entry.make ~table:"ipv4_table"
         ~matches:
           [ fm "vrf_id" (Entry.M_exact (bv16 1));
             fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.3.0.0/16")) ]
         (single "set_nexthop_id" [ bv16 1 ]));
  add (Entry.make ~table:"decap_table" ~priority:1
         ~matches:
           [ fm "dst_ip"
               (Entry.M_ternary (Ternary.of_prefix (Prefix.of_ipv4_string "10.3.0.0/16"))) ]
         (single "gre_decap" []));
  s

let cerberus_cfg () =
  { Interp.program = Cerberus.program; state = cerberus_state ();
    hash_mode = Interp.Seeded 5; mirror_map = [] }

let test_gre_encap () =
  let b = Interp.run_packet (cerberus_cfg ()) ~ingress_port:1 (packet ~dst:"10.2.9.9" ()) in
  check_bool "tunnel route forwards" true (b.b_egress = Some 7);
  (* Output carries a GRE header (4 bytes) and the rewritten outer dst. *)
  let plain =
    Interp.run_packet (cerberus_cfg ()) ~ingress_port:1 (packet ~dst:"10.3.9.9" ())
  in
  check_int "encap output is 4 bytes longer" 4
    (String.length b.b_packet - String.length plain.b_packet);
  (* Outer dst rewritten to the tunnel endpoint 172.16.0.1. *)
  check_int "outer dst first octet" 172 (Char.code b.b_packet.[30])

let test_gre_decap () =
  (* A GRE packet (ipv4 proto 47) to the decap range loses its GRE header
     and keeps forwarding. *)
  let inner =
    { Packet.headers =
        [ Packet.ethernet_frame ~dst:"02:00:00:00:aa:01" ~ether_type:0x0800 ();
          Packet.ipv4_header ~protocol:47 ~src:"192.0.2.1" ~dst:"10.3.1.1" ();
          Packet.instance Switchv_packet.Header.gre
            [ ("flags", Bitvec.zero 4); ("reserved0", Bitvec.zero 9);
              ("version", Bitvec.zero 3);
              ("protocol", Bitvec.of_int ~width:16 0x0800) ] ];
      payload = "" }
  in
  let b = Interp.run_packet (cerberus_cfg ()) ~ingress_port:1 inner in
  check_bool "decapped packet forwards" true (b.b_egress = Some 7);
  (* 14 (eth) + 20 (ipv4): GRE gone. *)
  check_int "GRE stripped" 34 (String.length b.b_packet);
  (* Same packet outside the decap range keeps its GRE header. *)
  let kept =
    Packet.set inner ~header:"ipv4" ~field:"dst_addr" (Packet.ipv4_of_string "10.2.1.1")
  in
  let b2 = Interp.run_packet (cerberus_cfg ()) ~ingress_port:1 kept in
  check_bool "non-decap GRE keeps header (and gets tunnel-encapped again)" true
    (String.length b2.b_packet > 34)

(* --- packet-out ------------------------------------------------------------------------ *)

let test_packet_out_direct () =
  let b =
    Interp.run_packet_out (cfg ()) ~egress_port:(Some 4) (packet ~dst:"10.1.2.3" ())
  in
  check_bool "emitted directly" true (b.b_egress = Some 4);
  check_bool "no pipeline trace" true (b.b_trace = [ ("<packet-out>", "direct") ])

let test_packet_out_submit_to_ingress () =
  let b = Interp.run_packet_out (cfg ()) ~egress_port:None (packet ~dst:"10.1.2.3" ()) in
  check_bool "routed through the pipeline" true (b.b_egress = Some 7)

(* --- parsing edge cases ------------------------------------------------------------------ *)

let test_parse_failure_on_truncated () =
  Alcotest.check_raises "truncated packet"
    (Interp.Parse_failure "truncated packet: need 160 bits for ipv4") (fun () ->
      (* Ethernet claims IPv4 follows, but the bytes run out. *)
      let eth =
        Packet.serialize (Packet.ethernet_frame ~ether_type:0x0800 ())
        |> Bitvec.to_bytes_be
      in
      ignore (Interp.run (cfg ()) ~ingress_port:1 (eth ^ "xx")))

let test_non_ip_passes_parser () =
  let arp_like =
    Packet.serialize (Packet.ethernet_frame ~ether_type:0x9999 ()) |> Bitvec.to_bytes_be
  in
  let b = Interp.run (cfg ()) ~ingress_port:1 (arp_like ^ "payload") in
  check_bool "unknown ether type accepted and dropped" true (b.b_egress = None)

(* Parse-deparse roundtrip: an unmodified pipeline must emit the very bytes
   it parsed. Use the figure2 program with no entries: default drop but
   b_packet still reflects the deparsed packet. *)
let prop_parse_deparse_identity =
  QCheck.Test.make ~name:"parse-deparse identity" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 0xFFFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Rng.create seed in
      let dst =
        Printf.sprintf "%d.%d.%d.%d" (Rng.int rng 256) (Rng.int rng 256)
          (Rng.int rng 256) (Rng.int rng 256)
      in
      let p = packet ~ttl:(1 + Rng.int rng 255) ~dst () in
      let bytes = Packet.to_bytes p in
      let empty = State.create () in
      let c =
        { Interp.program = Figure2.program; state = empty;
          hash_mode = Interp.Seeded 0; mirror_map = [] }
      in
      let b = Interp.run c ~ingress_port:1 bytes in
      String.equal b.b_packet bytes)

(* Differential property: for workload-provisioned middleblock state, the
   seeded-hash behaviour is always within the enumerated behaviour set. *)
let prop_seeded_within_enumerated =
  QCheck.Test.make ~name:"seeded behaviour within enumerated set" ~count:40
    (QCheck.make QCheck.Gen.(int_bound 0xFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Rng.create seed in
      let state = State.create () in
      List.iter
        (fun e -> ignore (State.insert state e))
        (Workload.generate ~seed:3 Middleblock.program Workload.small);
      let c =
        { Interp.program = Middleblock.program; state;
          hash_mode = Interp.Seeded seed; mirror_map = [] }
      in
      let dst = Printf.sprintf "10.0.%d.%d" (Rng.int rng 20) (Rng.int rng 256) in
      let bytes = Packet.to_bytes (packet ~dst_mac:"02:00:00:00:00:00" ~dst ()) in
      let b = Interp.run c ~ingress_port:1 bytes in
      let set = Interp.enumerate_behaviors c ~ingress_port:1 bytes in
      List.exists (Interp.behavior_equal b) set)

let () =
  Alcotest.run "bmv2"
    [ ("forwarding",
       [ Alcotest.test_case "routes and forwards" `Quick test_forward;
         Alcotest.test_case "route miss drops" `Quick test_route_miss_drops;
         Alcotest.test_case "unadmitted drops" `Quick test_not_admitted_drops;
         Alcotest.test_case "ttl decrement" `Quick test_ttl_decrement;
         Alcotest.test_case "ttl expiry punts" `Quick test_ttl_expiry_punts;
         Alcotest.test_case "mac rewrites" `Quick test_dst_mac_rewrite ]);
      ("matching",
       [ Alcotest.test_case "lpm longest wins" `Quick test_lpm_longest_wins;
         Alcotest.test_case "acl priority" `Quick test_acl_priority ]);
      ("punt and mirror",
       [ Alcotest.test_case "trap and copy" `Quick test_acl_trap_and_copy;
         Alcotest.test_case "mirror sessions" `Quick test_mirror ]);
      ("wcmp",
       [ Alcotest.test_case "behaviour set covers members" `Quick test_wcmp_behavior_set;
         Alcotest.test_case "deterministic per flow" `Quick test_wcmp_deterministic_per_flow ]);
      ("gre tunnels",
       [ Alcotest.test_case "encap" `Quick test_gre_encap;
         Alcotest.test_case "decap" `Quick test_gre_decap ]);
      ("packet-out",
       [ Alcotest.test_case "direct" `Quick test_packet_out_direct;
         Alcotest.test_case "submit to ingress" `Quick test_packet_out_submit_to_ingress ]);
      ("parsing",
       [ Alcotest.test_case "truncated packet" `Quick test_parse_failure_on_truncated;
         Alcotest.test_case "non-ip accepted" `Quick test_non_ip_passes_parser ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_parse_deparse_identity;
         QCheck_alcotest.to_alcotest prop_seeded_within_enumerated ]) ]
