// A model whose nondeterminism taint is visible to `switchv lint`:
//
//   P4A009 — ecmp_table keys on meta.bucket, which holds a hash<crc32>
//            result: which entry wins cannot be predicted.
//   P4A010 — the tainted bucket is then copied into std.egress_port, so
//            taint reaches the egress specification at pipeline exit.
//
// Both findings are warnings; the model carries no error-severity defect.

header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ether_type;
}

struct metadata_t {
  bit<16> bucket;
}

parser (start = start) {
  state start {
    packet.extract(headers.ethernet);
    transition accept;
  }
}

action no_action() {
}

action set_bucket_port() {
  std.egress_port = meta.bucket;
}

@id(1)
table ecmp_table {
  key = {
    meta.bucket : exact @name("bucket");
  }
  actions = { set_bucket_port; no_action }
  const default_action = no_action();
  size = 16;
}

control ingress {
  meta.bucket = hash<crc32>(ethernet.src_addr, ethernet.dst_addr);
  ecmp_table.apply();
}

control egress {
}
