// A deliberately-defective model for `switchv lint` tests. It typechecks
// (widths and references are all consistent) but carries one instance of
// each error-severity analysis finding:
//
//   P4A001 — bad_acl keys on ipv4.dst_addr, but no parser state ever
//            extracts ipv4: the header is never valid at the read.
//   P4A003 — debug_table is applied only under meta.debug_level == 2,
//            and debug_level is never assigned (so it is always 0).
//   P4A004 — locked_table's entry restriction requires in_port to equal
//            two different values at once: no entry can be installed.
//
// The statically-false conditional also yields a P4A006 warning, which is
// why the CLI test filters at --severity error.

header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ether_type;
}

header ipv4_t {
  bit<8> ttl;
  bit<8> protocol;
  bit<32> src_addr;
  bit<32> dst_addr;
}

struct metadata_t {
  bit<8> debug_level;
}

parser (start = start) {
  state start {
    packet.extract(headers.ethernet);
    transition accept;
  }
}

action no_action() {
}

action drop() {
  std.drop = 1w0x1;
}

@id(1)
table bad_acl {
  key = {
    ipv4.dst_addr : ternary @name("dst_ip");
  }
  actions = { drop; no_action }
  const default_action = no_action();
  size = 16;
}

@entry_restriction("in_port == 1 && in_port == 2")
@id(2)
table locked_table {
  key = {
    std.ingress_port : exact @name("in_port");
  }
  actions = { no_action }
  const default_action = no_action();
  size = 16;
}

@id(3)
table debug_table {
  key = {
    meta.debug_level : exact @name("level");
  }
  actions = { no_action }
  const default_action = no_action();
  size = 16;
}

control ingress {
  bad_acl.apply();
  locked_table.apply();
  if (meta.debug_level == 8w0x2) {
    debug_table.apply();
  }
}

control egress {
}
