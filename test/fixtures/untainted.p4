// The near-miss twin of tainted.p4: the same hash is computed, but the
// bucket is overwritten with a constant before the table reads it and
// before it reaches the egress port — sanitization by constant
// assignment kills the taint, so neither P4A009 nor P4A010 may fire.

header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ether_type;
}

struct metadata_t {
  bit<16> bucket;
}

parser (start = start) {
  state start {
    packet.extract(headers.ethernet);
    transition accept;
  }
}

action no_action() {
}

action set_bucket_port() {
  std.egress_port = meta.bucket;
}

@id(1)
table ecmp_table {
  key = {
    meta.bucket : exact @name("bucket");
  }
  actions = { set_bucket_port; no_action }
  const default_action = no_action();
  size = 16;
}

control ingress {
  meta.bucket = hash<crc32>(ethernet.src_addr, ethernet.dst_addr);
  meta.bucket = 16w0x1;
  ecmp_table.apply();
}

control egress {
}
