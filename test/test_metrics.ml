(* Tests for the §7 OKR metrics: a clean switch scores ~100% everywhere;
   a fault against one table degrades that table's score and leaves
   unrelated tables intact. *)

module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Workload = Switchv_sai.Workload
module Middleblock = Switchv_sai.Middleblock
module Metrics = Switchv_core.Metrics

let check_bool = Alcotest.check Alcotest.bool

let entries = Workload.generate ~seed:8 Middleblock.program Workload.small

let collect ?faults () =
  Metrics.collect ~batches:4 (fun () -> Stack.create ?faults Middleblock.program) entries

let metric t table =
  match List.find_opt (fun (m : Metrics.table_metric) -> m.tm_table = table) t with
  | Some m -> m
  | None -> Alcotest.failf "no metric row for %s" table

let test_clean_scores () =
  let t = collect () in
  List.iter
    (fun (m : Metrics.table_metric) ->
      (match Metrics.fuzz_score m with
      | Some s ->
          check_bool (m.tm_table ^ " fuzz handled 100%") true (s = 1.0)
      | None -> ());
      match Metrics.behave_score m with
      | Some s -> check_bool (m.tm_table ^ " behaves 100%") true (s = 1.0)
      | None -> ())
    t;
  (* Every program table received fuzz traffic. *)
  List.iter
    (fun (ti : Switchv_p4ir.P4info.table) ->
      check_bool (ti.ti_name ^ " fuzzed") true ((metric t ti.ti_name).tm_fuzzed > 0))
    Middleblock.info.pi_tables

let test_fault_degrades_target_table () =
  let fault =
    Fault.make ~id:"M1" ~component:Fault.P4runtime_server
      (Fault.Reject_valid_insert "acl_ingress_table") "m"
  in
  let t = collect ~faults:[ fault ] () in
  let acl = metric t "acl_ingress_table" in
  (match Metrics.fuzz_score acl with
  | Some s -> check_bool "acl fuzz score degraded" true (s < 1.0)
  | None -> Alcotest.fail "acl not fuzzed");
  (* An unrelated exact-match table is unaffected. *)
  match Metrics.fuzz_score (metric t "nexthop_table") with
  | Some s -> check_bool "nexthop unaffected" true (s = 1.0)
  | None -> Alcotest.fail "nexthop not fuzzed"

let test_data_fault_degrades_behaviour () =
  let fault =
    Fault.make ~id:"M2" ~component:Fault.Syncd (Fault.Syncd_drops_table "ipv4_table") "m"
  in
  let t = collect ~faults:[ fault ] () in
  let ipv4 = metric t "ipv4_table" in
  (match Metrics.behave_score ipv4 with
  | Some s -> check_bool "ipv4 behaviour degraded" true (s < 1.0)
  | None -> Alcotest.fail "ipv4 not covered");
  check_bool "ipv4 entries counted" true (ipv4.tm_entries > 0)

let test_feature_rollup () =
  let t = collect () in
  let f =
    Metrics.feature t ~name:"routing" ~tables:[ "ipv4_table"; "ipv6_table" ]
  in
  let ipv4 = metric t "ipv4_table" and ipv6 = metric t "ipv6_table" in
  Alcotest.check Alcotest.int "fuzzed adds up" (ipv4.tm_fuzzed + ipv6.tm_fuzzed)
    f.tm_fuzzed;
  Alcotest.check Alcotest.int "entries add up" (ipv4.tm_entries + ipv6.tm_entries)
    f.tm_entries

let () =
  Alcotest.run "metrics"
    [ ("okr",
       [ Alcotest.test_case "clean switch scores 100%" `Slow test_clean_scores;
         Alcotest.test_case "control fault degrades table" `Slow
           test_fault_degrades_target_table;
         Alcotest.test_case "data fault degrades behaviour" `Slow
           test_data_fault_degrades_behaviour;
         Alcotest.test_case "feature rollup" `Slow test_feature_rollup ]) ]
