(* Differential tests for the indexed match structures and the staged
   evaluator.

   Three layers of gating (the ISSUE's satellites):
   - property-based: random entry sets over random key schemas, with
     interleaved inserts/deletes — Switchv_match.Index lookup must equal a
     linear-scan reference on every probe, with greedy shrinking of the
     operation list on mismatch;
   - the State-level index against the interpreter's own
     [ordered_entries] + [entry_matches] precedence (the retained
     linear-scan reference), plus the pinned equal-priority ternary
     tie-break regression;
   - compiled vs interpreted: the provisioned-middleblock behaviour
     cases and a 200-seed fuzz soak through both evaluators, comparing
     full behaviours (trace included), coverage-counter deltas, and
     parse-failure messages. *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Rng = Switchv_bitvec.Rng
module Index = Switchv_match.Index
module Packet = Switchv_packet.Packet
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Ast = Switchv_p4ir.Ast
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Telemetry = Switchv_telemetry.Telemetry

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* --- part 1: property-based Index vs linear reference ---------------------- *)

(* An operation log over one schema; the reference is the plain list the
   index claims to replace. *)
type op =
  | Insert of Index.mv option array * int (* mvs, priority *)
  | Delete of int                         (* drop the i-th live entry *)

type live = { l_mvs : Index.mv option array; l_prio : int; l_seq : int }

let rand_kind rng =
  match Rng.int rng 4 with
  | 0 -> Index.Exact
  | 1 -> Index.Lpm
  | 2 -> Index.Ternary
  | _ -> Index.Optional

let rand_schema rng =
  let n = 1 + Rng.int rng 3 in
  Array.init n (fun _ ->
      { Index.key_width = 2 + Rng.int rng 7; key_kind = rand_kind rng })

(* Match values are mostly kind-appropriate but sometimes arbitrary: the
   interpreter accepts any mv form on any key kind, so the index must
   too (routing odd shapes to its residual list). *)
let rand_mv rng (k : Index.key) =
  let w = k.Index.key_width in
  if Rng.int rng 10 = 0 then None
  else
    let pick =
      if Rng.int rng 10 < 7 then
        match k.Index.key_kind with
        | Index.Exact -> 0
        | Index.Lpm -> 1
        | Index.Ternary -> 2
        | Index.Optional -> 3
      else Rng.int rng 4
    in
    Some
      (match pick with
      | 0 -> Index.Mexact (Rng.bitvec rng w)
      | 1 ->
          (* canonical, as [Prefix.make] guarantees: value pre-masked *)
          let len = Rng.int rng (w + 1) in
          Index.Mlpm
            (Bitvec.logand (Rng.bitvec rng w) (Bitvec.prefix_mask ~width:w len), len)
      | 2 ->
          (* canonical, as [Ternary.make] guarantees *)
          let m = Rng.bitvec rng w in
          Index.Mternary (Bitvec.logand (Rng.bitvec rng w) m, m)
      | _ ->
          Index.Moptional
            (if Rng.int rng 4 = 0 then None else Some (Rng.bitvec rng w)))

let rand_ops rng schema =
  let n = Rng.int rng 40 in
  List.init n (fun _ ->
      if Rng.int rng 5 = 0 then Delete (Rng.int rng 1000)
      else
        Insert
          (Array.map (fun k -> rand_mv rng k) schema, Rng.int rng 4))

(* Linear-scan reference: the interpreter's (rank, seq) winner rule,
   written directly over the live list. *)
let ref_winner schema live values =
  let priority_mode =
    Array.exists
      (fun k ->
        match k.Index.key_kind with
        | Index.Ternary | Index.Optional -> true
        | _ -> false)
      schema
  in
  let matches l =
    let ok = ref true in
    Array.iteri
      (fun i mv ->
        match mv with
        | None -> ()
        | Some mv -> if not (Index.mv_matches values.(i) mv) then ok := false)
      l.l_mvs;
    !ok
  in
  let specificity l =
    let acc = ref 0 in
    Array.iteri
      (fun i mv ->
        match (schema.(i).Index.key_kind, mv) with
        | Index.Lpm, Some (Index.Mlpm (_, len)) -> acc := !acc + len
        | _ -> ())
      l.l_mvs;
    !acc
  in
  let rank l = if priority_mode then -l.l_prio else -specificity l in
  List.fold_left
    (fun best l ->
      if not (matches l) then best
      else
        match best with
        | None -> Some l
        | Some b ->
            let c = compare (rank l, l.l_seq) (rank b, b.l_seq) in
            if c < 0 then Some l else best)
    None live

(* Replay an op log, probing after every step with values derived from the
   live entries (so probes actually hit) plus uniform noise. Returns the
   step at which index and reference disagree, if any. *)
let replay schema ops =
  let ix = Index.create schema in
  let live = ref [] in
  let seq = ref 0 in
  let prng = Rng.create 0x9E3779B9 in
  let probe_of l =
    Array.mapi
      (fun i mv ->
        let w = schema.(i).Index.key_width in
        match mv with
        | Some (Index.Mexact v) -> v
        | Some (Index.Mlpm (v, len)) ->
            (* random bits under the prefix *)
            let noise = Rng.bitvec prng w in
            Bitvec.logor
              (Bitvec.logand v (Bitvec.prefix_mask ~width:w len))
              (Bitvec.logand noise
                 (Bitvec.lognot (Bitvec.prefix_mask ~width:w len)))
        | Some (Index.Mternary (v, m)) when Bitvec.width m = w ->
            Bitvec.logor (Bitvec.logand v m)
              (Bitvec.logand (Rng.bitvec prng w) (Bitvec.lognot m))
        | Some (Index.Moptional (Some v)) -> v
        | _ -> Rng.bitvec prng w)
      l.l_mvs
  in
  let disagree = ref None in
  List.iteri
    (fun step op ->
      if !disagree = None then begin
        (match op with
        | Insert (mvs, prio) ->
            let s = !seq in
            incr seq;
            Index.insert ix ~mvs ~priority:prio ~seq:s s;
            live := !live @ [ { l_mvs = mvs; l_prio = prio; l_seq = s } ]
        | Delete i -> (
            match !live with
            | [] -> ()
            | l ->
                let victim = List.nth l (i mod List.length l) in
                Index.remove ix ~mvs:victim.l_mvs ~seq:victim.l_seq;
                live := List.filter (fun x -> x.l_seq <> victim.l_seq) l));
        let probes =
          List.concat_map (fun l -> [ probe_of l ]) !live
          @ List.init 3 (fun _ ->
                Array.map
                  (fun k -> Rng.bitvec prng k.Index.key_width)
                  schema)
        in
        List.iter
          (fun values ->
            let want =
              Option.map (fun l -> l.l_seq) (ref_winner schema !live values)
            in
            let got = Index.lookup ix values in
            if want <> got then disagree := Some (step, values, want, got))
          probes
      end)
    ops;
  !disagree

let pp_mv fmt = function
  | Index.Mexact v -> Format.fprintf fmt "exact %s" (Bitvec.to_hex_string v)
  | Index.Mlpm (v, l) -> Format.fprintf fmt "lpm %s/%d" (Bitvec.to_hex_string v) l
  | Index.Mternary (v, m) ->
      Format.fprintf fmt "tern %s &%s" (Bitvec.to_hex_string v) (Bitvec.to_hex_string m)
  | Index.Moptional None -> Format.fprintf fmt "opt *"
  | Index.Moptional (Some v) -> Format.fprintf fmt "opt %s" (Bitvec.to_hex_string v)

let pp_op fmt = function
  | Insert (mvs, p) ->
      Format.fprintf fmt "insert p%d [%a]" p
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           (fun fmt -> function
             | None -> Format.pp_print_string fmt "_"
             | Some mv -> pp_mv fmt mv))
        (Array.to_list mvs)
  | Delete i -> Format.fprintf fmt "delete %d" i

(* Greedy shrink: repeatedly try dropping each op while the replay still
   disagrees — qgen's strategy, specialised to op lists. *)
let shrink_ops schema ops =
  let fails ops = replay schema ops <> None in
  let rec pass ops =
    let shrunk = ref None in
    let n = List.length ops in
    let without i = List.filteri (fun j _ -> j <> i) ops in
    (try
       for i = 0 to n - 1 do
         let cand = without i in
         if fails cand then begin
           shrunk := Some cand;
           raise Exit
         end
       done
     with Exit -> ());
    match !shrunk with Some ops' -> pass ops' | None -> ops
  in
  pass ops

let test_index_differential () =
  for seed = 0 to 149 do
    let rng = Rng.create (0xD1FF + seed) in
    let schema = rand_schema rng in
    let ops = rand_ops rng schema in
    match replay schema ops with
    | None -> ()
    | Some _ ->
        let ops = shrink_ops schema ops in
        let step, values, want, got =
          match replay schema ops with Some d -> d | None -> assert false
        in
        Alcotest.failf
          "seed %d: index disagrees with linear reference at step %d on \
           probe [%s]: want %s, got %s; shrunk ops:@.%a"
          seed step
          (String.concat "; "
             (Array.to_list (Array.map Bitvec.to_hex_string values)))
          (match want with None -> "miss" | Some s -> "seq " ^ string_of_int s)
          (match got with None -> "miss" | Some s -> "seq " ^ string_of_int s)
          (Format.pp_print_list pp_op)
          ops
  done

(* --- part 2: State.index_lookup vs Interp.ordered_entries ------------------ *)

let bv w n = Bitvec.of_int ~width:w n
let fm field value = { Entry.fm_field = field; fm_value = value }
let noop = Entry.Single { ai_name = "noop"; ai_args = [] }

let mk_table name keys =
  { Ast.t_name = name;
    t_id = 1;
    t_keys =
      List.mapi
        (fun i (kind, _w) ->
          { Ast.k_name = "k" ^ string_of_int i;
            k_expr = Ast.E_const (Bitvec.zero 1);
            k_kind = kind;
            k_refers_to = None })
        keys;
    t_actions = [ "noop" ];
    t_default_action = ("noop", []);
    t_size = 1024;
    t_entry_restriction = None;
    t_selector = false }

let specs_of keys =
  Array.of_list
    (List.mapi
       (fun i (kind, w) ->
         { State.ks_name = "k" ^ string_of_int i;
           ks_width = w;
           ks_kind =
             (match kind with
             | Ast.Exact -> Index.Exact
             | Ast.Lpm -> Index.Lpm
             | Ast.Ternary -> Index.Ternary
             | Ast.Optional -> Index.Optional) })
       keys)

(* The retained linear-scan reference: precedence-sorted scan, first
   match wins (what the interpreter executes). *)
let scan_winner table st values_assoc =
  List.find_opt
    (Interp.entry_matches table values_assoc)
    (Interp.ordered_entries table (State.entries_of st table.Ast.t_name))

let check_entry_opt msg want got =
  let eq = match (want, got) with
    | None, None -> true
    | Some a, Some b -> Entry.equal a b
    | _ -> false
  in
  if not eq then
    Alcotest.failf "%s: scan says %s, index says %s" msg
      (match want with None -> "miss" | Some e -> Format.asprintf "%a" Entry.pp e)
      (match got with None -> "miss" | Some e -> Format.asprintf "%a" Entry.pp e)

let test_state_index_differential () =
  let keys = [ (Ast.Exact, 8); (Ast.Lpm, 8) ] in
  let table = mk_table "t" keys in
  let specs = specs_of keys in
  let st = State.create () in
  let rng = Rng.create 0xAB1E in
  let mk_entry i =
    let vrf = Rng.int rng 4 in
    let len = Rng.int rng 9 in
    Entry.make ~table:"t"
      ~matches:
        ([ fm "k0" (Entry.M_exact (bv 8 vrf)) ]
        @
        if i mod 7 = 0 then []
        else [ fm "k1" (Entry.M_lpm (Prefix.make (Rng.bitvec rng 8) len)) ])
      noop
  in
  let probe () =
    let values = [| bv 8 (Rng.int rng 4); Rng.bitvec rng 8 |] in
    let assoc = [ ("k0", values.(0)); ("k1", values.(1)) ] in
    check_entry_opt "exact+lpm table"
      (scan_winner table st assoc)
      (State.index_lookup st ~table:"t" ~keys:specs values)
  in
  let inserted = ref [] in
  for i = 0 to 199 do
    let e = mk_entry i in
    (match State.insert st e with
    | Ok () -> inserted := e :: !inserted
    | Error _ -> ());
    (* interleaved deletes keep the incremental maintenance honest *)
    if i mod 11 = 10 then begin
      match !inserted with
      | victim :: rest when Rng.int rng 2 = 0 ->
          (match State.delete st victim with Ok () -> inserted := rest | Error _ -> ())
      | _ -> ()
    end;
    for _ = 0 to 3 do probe () done
  done

let test_ternary_tiebreak_pinned () =
  (* Two overlapping ternary entries at the same priority: the documented
     tie-break is insertion order, so A (first installed) wins; after
     deleting and re-inserting A, B has the earlier seq and wins. *)
  let keys = [ (Ast.Ternary, 8) ] in
  let table = mk_table "acl" keys in
  let specs = specs_of keys in
  let st = State.create () in
  let entry v m =
    Entry.make ~table:"acl" ~priority:5
      ~matches:[ fm "k0" (Entry.M_ternary (Ternary.make ~value:(bv 8 v) ~mask:(bv 8 m))) ]
      noop
  in
  let a = entry 0x10 0xF0 and b = entry 0x01 0x0F in
  check_bool "insert a" true (State.insert st a = Ok ());
  check_bool "insert b" true (State.insert st b = Ok ());
  let probe = [| bv 8 0x11 |] in
  let assoc = [ ("k0", probe.(0)) ] in
  let won = State.index_lookup st ~table:"acl" ~keys:specs probe in
  check_entry_opt "tie-break" (scan_winner table st assoc) won;
  check_bool "first-inserted wins the equal-priority tie" true
    (match won with Some e -> Entry.equal_key e a | None -> false);
  (* rotate: delete + re-insert A; insertion order now favours B *)
  check_bool "delete a" true (State.delete st a = Ok ());
  check_bool "re-insert a" true (State.insert st a = Ok ());
  let won = State.index_lookup st ~table:"acl" ~keys:specs probe in
  check_entry_opt "tie-break after rotate" (scan_winner table st assoc) won;
  check_bool "re-inserted entry moved to the back of the tie" true
    (match won with Some e -> Entry.equal_key e b | None -> false)

(* --- part 3: compiled vs interpreted --------------------------------------- *)

let provisioned () =
  let s = State.create () in
  let add e = ignore (State.insert s e) in
  let bv16 = Bitvec.of_int ~width:16 in
  add (Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
         (Entry.Single { ai_name = "no_action"; ai_args = [] }));
  add (Entry.make ~table:"router_interface_table"
         ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 1)) ]
         (Entry.Single
            { ai_name = "set_port_and_src_mac";
              ai_args = [ bv16 7; Packet.mac_of_string "02:00:00:00:bb:01" ] }));
  add (Entry.make ~table:"neighbor_table"
         ~matches:
           [ fm "router_interface_id" (Entry.M_exact (bv16 1));
             fm "neighbor_id" (Entry.M_exact (bv16 1)) ]
         (Entry.Single
            { ai_name = "set_dst_mac";
              ai_args = [ Packet.mac_of_string "02:00:00:00:cc:01" ] }));
  add (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 1)) ]
         (Entry.Single { ai_name = "set_ip_nexthop"; ai_args = [ bv16 1; bv16 1 ] }));
  add (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
         (Entry.Single { ai_name = "set_vrf"; ai_args = [ bv16 1 ] }));
  add (Entry.make ~table:"l3_admit_table" ~priority:1
         ~matches:
           [ fm "dst_mac"
               (Entry.M_ternary (Ternary.exact (Packet.mac_of_string "02:00:00:00:aa:01"))) ]
         (Entry.Single { ai_name = "l3_admit"; ai_args = [] }));
  add (Entry.make ~table:"ipv4_table"
         ~matches:
           [ fm "vrf_id" (Entry.M_exact (bv16 1));
             fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.1.0.0/16")) ]
         (Entry.Single { ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }));
  s

let packet ?(dst_mac = "02:00:00:00:aa:01") ?(ttl = 64) ~dst () =
  Packet.to_bytes
    { Packet.headers =
        [ Packet.ethernet_frame ~dst:dst_mac ~ether_type:0x0800 ();
          Packet.ipv4_header ~ttl ~src:"192.0.2.1" ~dst ();
          Packet.udp_header ~src_port:1000 ~dst_port:2000 () ];
      payload = "xyz" }

type outcome =
  | B of Interp.behavior * (string * int) list  (* behavior + cov counters *)
  | Fail of string

(* Run one evaluator under a scratch registry; capture everything that
   must agree: the full behavior record (trace included — stricter than
   [behavior_equal]) and every emitted counter. *)
let observe run cfg ~ingress_port bytes =
  let scratch = Telemetry.create () in
  let res =
    Telemetry.with_registry scratch (fun () ->
        match run cfg ~ingress_port bytes with
        | b -> B (b, [])
        | exception Interp.Parse_failure m -> Fail m)
  in
  match res with
  | B (b, _) -> B (b, (Telemetry.export scratch).Telemetry.ex_counters)
  | f -> f

let check_same_outcome msg cfg ~ingress_port bytes =
  let i = observe Interp.run cfg ~ingress_port bytes in
  let c = observe Compile.run cfg ~ingress_port bytes in
  match (i, c) with
  | B (bi, ci), B (bc, cc) ->
      if bi <> bc then
        Alcotest.failf "%s: behaviors differ:@.interp %a@.compiled %a" msg
          Interp.pp_behavior bi Interp.pp_behavior bc;
      if ci <> cc then
        Alcotest.failf "%s: coverage counters differ (interp %d keys, compiled %d keys)"
          msg (List.length ci) (List.length cc)
  | Fail a, Fail b ->
      Alcotest.check Alcotest.string (msg ^ ": parse-failure message") a b
  | Fail m, B _ ->
      Alcotest.failf "%s: interp failed (%s) but compiled succeeded" msg m
  | B _, Fail m ->
      Alcotest.failf "%s: compiled failed (%s) but interp succeeded" msg m

let mb_cfg state =
  { Interp.program = Middleblock.program; state; hash_mode = Interp.Seeded 5; mirror_map = [] }

let test_compiled_behavior_cases () =
  let cfg = mb_cfg (provisioned ()) in
  let cases =
    [ ("forward", packet ~dst:"10.1.2.3" ());
      ("route miss", packet ~dst:"99.1.2.3" ());
      ("not admitted", packet ~dst_mac:"02:00:00:00:00:99" ~dst:"10.1.2.3" ());
      ("ttl expiry", packet ~ttl:1 ~dst:"10.1.2.3" ());
      ("ttl 2", packet ~ttl:2 ~dst:"10.1.2.3" ());
      ("truncated", "\x00\x01");
      ("empty", "") ]
  in
  List.iter
    (fun (msg, bytes) -> check_same_outcome msg cfg ~ingress_port:1 bytes)
    cases;
  (* behavior-set enumeration must agree too (hash-round dispatch) *)
  let bytes = packet ~dst:"10.1.2.3" () in
  let bi = Interp.enumerate_behaviors cfg ~ingress_port:1 bytes in
  let bc = Compile.enumerate_behaviors cfg ~ingress_port:1 bytes in
  check_bool "enumerated behavior sets equal" true (bi = bc);
  let ii = Interp.run_info cfg ~ingress_port:1 bytes in
  let ic = Compile.run_info cfg ~ingress_port:1 bytes in
  check_int "hash calls" ii.Interp.ri_hash_calls ic.Interp.ri_hash_calls;
  check_bool "valid headers at deparse" true (ii.Interp.ri_valid = ic.Interp.ri_valid)

let test_compiled_fuzz_soak () =
  (* 200 seeds: workload-provisioned state, a structured packet with
     randomised fields, and a raw random byte string per seed. *)
  for seed = 0 to 199 do
    let rng = Rng.create (0x50AC + seed) in
    let state = State.create () in
    List.iter
      (fun e -> ignore (State.insert state e))
      (Workload.generate ~seed:(1 + (seed mod 5)) Middleblock.program
         (Workload.scaled 0.3 Workload.small));
    let cfg =
      { Interp.program = Middleblock.program;
        state;
        hash_mode = Interp.Seeded seed;
        mirror_map = [ (1, 30) ] }
    in
    let dst =
      Printf.sprintf "%d.%d.%d.%d" (Rng.int rng 256) (Rng.int rng 256)
        (Rng.int rng 256) (Rng.int rng 256)
    in
    let dst_mac =
      if Rng.int rng 2 = 0 then "02:00:00:00:aa:01"
      else Printf.sprintf "02:00:00:00:aa:%02x" (Rng.int rng 256)
    in
    let structured = packet ~dst_mac ~ttl:(Rng.int rng 256) ~dst () in
    let raw = String.init (Rng.int rng 64) (fun _ -> Char.chr (Rng.int rng 256)) in
    let port = 1 + Rng.int rng 4 in
    check_same_outcome (Printf.sprintf "soak %d structured" seed) cfg
      ~ingress_port:port structured;
    check_same_outcome (Printf.sprintf "soak %d raw" seed) cfg
      ~ingress_port:port raw
  done

let test_compiled_packet_out () =
  let cfg = mb_cfg (provisioned ()) in
  let po = { Packet.headers = [ Packet.ethernet_frame ~dst:"02:00:00:00:aa:01" ~ether_type:0x0800 ();
                                Packet.ipv4_header ~ttl:9 ~src:"192.0.2.9" ~dst:"10.1.9.9" ();
                                Packet.udp_header ~src_port:7 ~dst_port:8 () ];
             payload = "po" }
  in
  List.iter
    (fun egress_port ->
      let bi = Interp.run_packet_out cfg ~egress_port po in
      let bc = Compile.run_packet_out cfg ~egress_port po in
      check_bool "packet-out behaviors equal" true (bi = bc))
    [ Some 3; None ]

let () =
  Alcotest.run "match"
    [ ( "index",
        [ Alcotest.test_case "differential vs linear scan (150 seeds)" `Quick
            test_index_differential;
          Alcotest.test_case "state-level differential" `Quick
            test_state_index_differential;
          Alcotest.test_case "equal-priority ternary tie-break" `Quick
            test_ternary_tiebreak_pinned ] );
      ( "compiled",
        [ Alcotest.test_case "behavior cases" `Quick test_compiled_behavior_cases;
          Alcotest.test_case "fuzz soak (200 seeds)" `Quick test_compiled_fuzz_soak;
          Alcotest.test_case "packet-out" `Quick test_compiled_packet_out ] ) ]
