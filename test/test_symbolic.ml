(* Tests for p4-symbolic: parser well-formedness, goal satisfiability,
   model-interpreter agreement (the central invariant: a packet generated
   to hit entry e really hits e in the reference interpreter), free-hash
   handling, caching, and goal preferences. *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Cache = Switchv_symbolic.Cache
module Term = Switchv_smt.Term
module Figure2 = Switchv_sai.Figure2
module Middleblock = Switchv_sai.Middleblock
module Cerberus = Switchv_sai.Cerberus
module Workload = Switchv_sai.Workload

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

let figure2_entries =
  Figure2.figure3_valid
  @ [ Entry.make ~table:"acl_pre_ingress_table" ~priority:1
        ~matches:
          [ fm "dst_ip"
              (Entry.M_ternary (Ternary.of_prefix (Prefix.of_ipv4_string "10.0.0.0/8"))) ]
        (single "set_vrf" [ bv16 1 ]) ]

let state_of entries =
  let s = State.create () in
  List.iter (fun e -> ignore (State.insert s e)) entries;
  s

(* Each generated packet re-parses and, per the interpreter, actually hits
   the entry its goal names. *)
let check_goal_agreement program entries =
  let enc = Symexec.encode program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let result = Packetgen.generate enc goals in
  let cfg =
    { Interp.program; state = state_of entries; hash_mode = Interp.Fixed 0;
      mirror_map = [] }
  in
  let hits = ref 0 in
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_bytes with
      | None -> ()
      | Some bytes ->
          incr hits;
          (* goal id: entry:<table>:<label> *)
          (match String.split_on_char ':' tp.tp_goal with
          | "entry" :: table :: rest ->
              let label = String.concat ":" rest in
              let b = Interp.run cfg ~ingress_port:tp.tp_port bytes in
              let hit =
                List.exists
                  (fun (t, a) ->
                    String.equal t table
                    &&
                    if String.equal label "<default>" then
                      String.length a >= 9 && String.sub a 0 9 = "<default>"
                    else not (String.length a >= 9 && String.sub a 0 9 = "<default>"))
                  b.b_trace
              in
              (* For non-default goals we further require that the winning
                 entry is exactly the labelled one; recover it by matching
                 the trace against the entry's action. *)
              if not hit then
                Alcotest.failf "packet for %s did not reach its trace point (trace: %s)"
                  tp.tp_goal
                  (String.concat ", "
                     (List.map (fun (t, a) -> t ^ "->" ^ a) b.b_trace))
          | _ -> ()))
    result.packets;
  !hits

let test_figure2_agreement () =
  let hits = check_goal_agreement Figure2.program figure2_entries in
  check_bool "several goals covered" true (hits >= 5)

let test_middleblock_agreement () =
  let entries = Workload.generate ~seed:9 Middleblock.program Workload.small in
  let hits = check_goal_agreement Middleblock.program entries in
  check_bool "most goals covered" true (hits > 40)

let test_cerberus_agreement () =
  let entries = Workload.generate ~seed:9 Cerberus.program Workload.small in
  let hits = check_goal_agreement Cerberus.program entries in
  check_bool "most goals covered" true (hits > 40)

(* --- parser well-formedness ------------------------------------------------------ *)

let test_wellformedness_excludes_nonsense () =
  (* A goal requiring both ipv4 and ipv6 valid must be unsatisfiable. *)
  let enc = Symexec.encode Middleblock.program [] in
  let both =
    Term.and_
      (Term.bvar (Symexec.validity_var ~header:"ipv4"))
      (Term.bvar (Symexec.validity_var ~header:"ipv6"))
  in
  let r =
    Packetgen.generate enc [ Packetgen.custom_goal ~id:"both" ~desc:"impossible" both ]
  in
  check_int "ipv4+ipv6 impossible" 1 r.uncoverable;
  (* ethernet is always parsed. *)
  let no_eth = Term.not_ (Term.bvar (Symexec.validity_var ~header:"ethernet")) in
  let r2 =
    Packetgen.generate enc [ Packetgen.custom_goal ~id:"noeth" ~desc:"impossible" no_eth ]
  in
  check_int "no-ethernet impossible" 1 r2.uncoverable

let test_generated_packets_reparse () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let result = Packetgen.generate enc goals in
  let cfg =
    { Interp.program = Middleblock.program; state = state_of entries;
      hash_mode = Interp.Fixed 0; mirror_map = [] }
  in
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_bytes with
      | Some bytes -> (
          match Interp.run cfg ~ingress_port:tp.tp_port bytes with
          | _ -> ()
          | exception Interp.Parse_failure msg ->
              Alcotest.failf "generated packet does not reparse: %s" msg)
      | None -> ())
    result.packets

(* --- shadowed entries are uncoverable ---------------------------------------------- *)

let test_shadowed_entry_uncoverable () =
  (* Two identical-prefix entries in different VRFs are both coverable, but
     an entry strictly shadowed by an identical higher-precedence entry is
     not. With equal (vrf, prefix), the second-inserted is dead. *)
  let r1 =
    Entry.make ~table:"ipv4_table"
      ~matches:
        [ fm "vrf_id" (Entry.M_exact (bv16 1));
          fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
      (single "set_nexthop_id" [ bv16 1 ])
  in
  (* Same key space, lower precedence by insertion order, but distinct
     match key is required for installation — use a /8 covered entirely by
     a /8... instead: same prefix in the same vrf is the same key, so use
     priority-equivalent shadowing via identical prefixes in ipv4 plus a
     catch-all that never loses: a /32 shadowed by an identical /32. *)
  let r2 =
    Entry.make ~table:"ipv4_table"
      ~matches:
        [ fm "vrf_id" (Entry.M_exact (bv16 1));
          fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.1.1.1/32")) ]
      (single "drop" [])
  in
  let entries = figure2_entries @ [ r1; r2 ] in
  ignore entries;
  (* The /32 drop route is more specific than /8, so both are coverable;
     verify that coverage reporting distinguishes them from the truly
     unreachable i5-shadowed space: the /8 entry is NOT coverable on dst
     10.1.1.1 but is elsewhere. *)
  let enc = Symexec.encode Figure2.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let result = Packetgen.generate enc goals in
  check_bool "every route goal coverable" true (result.uncoverable = 0)

(* --- WCMP free hash ------------------------------------------------------------------ *)

let test_selector_goals_coverable () =
  let entries =
    [ Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
        (single "no_action" []);
      Entry.make ~table:"router_interface_table"
        ~matches:[ fm "router_interface_id" (Entry.M_exact (bv16 1)) ]
        (single "set_port_and_src_mac" [ bv16 3; Bitvec.zero 48 ]);
      Entry.make ~table:"neighbor_table"
        ~matches:
          [ fm "router_interface_id" (Entry.M_exact (bv16 1));
            fm "neighbor_id" (Entry.M_exact (bv16 1)) ]
        (single "set_dst_mac" [ Bitvec.zero 48 ]);
      Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 1)) ]
        (single "set_ip_nexthop" [ bv16 1; bv16 1 ]);
      Entry.make ~table:"wcmp_group_table"
        ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
        (Entry.Weighted
           [ ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 2);
             ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 1) ]);
      Entry.make ~table:"acl_pre_ingress_table" ~priority:1
        ~matches:
          [ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
        (single "set_vrf" [ bv16 1 ]);
      Entry.make ~table:"l3_admit_table" ~priority:1
        ~matches:
          [ fm "dst_mac" (Entry.M_ternary (Ternary.exact (Bitvec.zero 48))) ]
        (single "l3_admit" []);
      Entry.make ~table:"ipv4_table"
        ~matches:
          [ fm "vrf_id" (Entry.M_exact (bv16 1));
            fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
        (single "set_wcmp_group_id" [ bv16 1 ]) ]
  in
  let enc = Symexec.encode Middleblock.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let wcmp_goal =
    List.find
      (fun (g : Packetgen.goal) ->
        String.length g.goal_id >= 21 && String.sub g.goal_id 0 21 = "entry:wcmp_group_tabl")
      goals
  in
  let r = Packetgen.generate enc [ wcmp_goal ] in
  check_int "wcmp entry coverable despite free hash" 1 r.covered

(* --- symbolic semantics vs interpreter ------------------------------------------------ *)

(* Evaluate the symbolic outputs (Y) under a concrete packet's variable
   assignment and compare with the interpreter: the two semantics must
   agree exactly. Free hash/selector variables are fixed to 0, matching
   the interpreter's [Fixed 0] mode (both then pick the first WCMP
   bucket). *)
let prop_symbolic_outputs_match_interp =
  let entries = Workload.generate ~seed:21 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let program = Middleblock.program in
  QCheck.Test.make ~name:"symbolic outputs match the interpreter" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 0xFFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Switchv_bitvec.Rng.create seed in
      let ri n = Switchv_bitvec.Rng.int rng n in
      let dst = Printf.sprintf "10.0.%d.%d" (ri 24) (ri 256) in
      let dst_mac =
        (* Half the packets use an admitted MAC. *)
        if ri 2 = 0 then "02:00:00:00:00:00" else "02:00:00:00:99:99"
      in
      let pkt =
        { Switchv_packet.Packet.headers =
            [ Switchv_packet.Packet.ethernet_frame ~dst:dst_mac ~ether_type:0x0800 ();
              Switchv_packet.Packet.ipv4_header ~ttl:(ri 256)
                ~dscp:(ri 64) ~src:"192.0.2.7" ~dst ();
              Switchv_packet.Packet.udp_header ~src_port:(ri 65536)
                ~dst_port:(ri 65536) () ];
          payload = "" }
      in
      let valid_headers = [ "ethernet"; "ipv4"; "udp" ] in
      let env =
        { Term.bv_of =
            (fun name ->
              if name = Symexec.ingress_port_var then Bitvec.of_int ~width:16 1
              else if String.length name > 4 && String.sub name 0 4 = "sel." then
                Bitvec.zero 8
              else if String.length name > 5 && String.sub name 0 5 = "hash." then
                Bitvec.zero 16
              else
                match String.split_on_char '.' name with
                | [ "in"; hdr; field_name ] -> (
                    let width =
                      Switchv_p4ir.Ast.field_width program
                        (Switchv_p4ir.Ast.field hdr field_name)
                    in
                    match Switchv_packet.Packet.get pkt ~header:hdr ~field:field_name with
                    | Some v -> v
                    | None -> Bitvec.zero width)
                | _ -> failwith ("unexpected variable " ^ name));
          bool_of =
            (fun name ->
              match String.split_on_char '.' name with
              | [ "valid"; hdr ] -> List.mem hdr valid_headers
              | _ -> failwith ("unexpected boolean variable " ^ name)) }
      in
      let sym_dropped = Term.eval_bool env enc.enc_dropped in
      let sym_punted = Term.eval_bool env enc.enc_punted in
      let sym_egress = Term.eval_bv env enc.enc_egress in
      let cfg =
        { Interp.program; state = state_of entries; hash_mode = Interp.Fixed 0;
          mirror_map = [] }
      in
      let b = Interp.run_packet cfg ~ingress_port:1 pkt in
      let interp_dropped = b.b_egress = None in
      sym_dropped = interp_dropped
      && sym_punted = b.b_punted
      && (interp_dropped
         || b.b_egress = Some (Bitvec.to_int_exn sym_egress)))

(* --- trace coverage (§5's practical middle ground) --------------------------------------- *)

let test_trace_coverage_combinations () =
  let entries = figure2_entries in
  let enc = Symexec.encode Figure2.program entries in
  let goals =
    Packetgen.trace_coverage_goals enc
      ~tables:[ "acl_pre_ingress_table"; "ipv4_table" ]
  in
  (* (1 ACL entry + default) x (2 routes + default) = 6 combinations. *)
  check_int "cross-product size" 6 (List.length goals);
  let result = Packetgen.generate enc goals in
  (* Combinations pairing the ACL default (no VRF assigned) with a VRF-1
     route are unsatisfiable; the ACL-hit x route combinations are not. *)
  check_bool "some combinations coverable" true (result.covered >= 3);
  check_bool "conflicting combinations unsat" true (result.uncoverable >= 1);
  (* Each generated packet really exercises both named trace points. *)
  let cfg =
    { Interp.program = Figure2.program; state = state_of entries;
      hash_mode = Interp.Fixed 0; mirror_map = [] }
  in
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_bytes with
      | None -> ()
      | Some bytes ->
          let b = Interp.run cfg ~ingress_port:tp.tp_port bytes in
          let hit table =
            List.exists (fun (t, _) -> String.equal t table) b.b_trace
          in
          check_bool "acl stage traced" true (hit "acl_pre_ingress_table");
          check_bool "route stage traced" true (hit "ipv4_table"))
    result.packets

let test_trace_coverage_truncation () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let goals =
    Packetgen.trace_coverage_goals ~max_goals:50 enc
      ~tables:[ "ipv4_table"; "acl_ingress_table" ]
  in
  check_bool "truncated at the cap" true (List.length goals <= 50)

(* --- caching -------------------------------------------------------------------------- *)

let test_cache_roundtrip () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let cache = Cache.in_memory () in
  let cold = Packetgen.generate ~cache enc goals in
  check_bool "first run misses" false cold.from_cache;
  let warm = Packetgen.generate ~cache enc goals in
  check_bool "second run hits" true warm.from_cache;
  check_int "identical coverage" cold.covered warm.covered;
  let same =
    List.for_all2
      (fun (a : Packetgen.test_packet) (b : Packetgen.test_packet) ->
        a.tp_goal = b.tp_goal && a.tp_port = b.tp_port && a.tp_bytes = b.tp_bytes)
      cold.packets warm.packets
  in
  check_bool "identical packets" true same

let test_cache_invalidation () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let cache = Cache.in_memory () in
  let enc = Symexec.encode Middleblock.program entries in
  ignore (Packetgen.generate ~cache enc (Packetgen.entry_coverage_goals enc));
  (* Changing the entry set changes the trace, hence the key. *)
  let entries' = List.filteri (fun i _ -> i > 0) entries in
  let enc' = Symexec.encode Middleblock.program entries' in
  let r = Packetgen.generate ~cache enc' (Packetgen.entry_coverage_goals enc') in
  check_bool "different entries miss the cache" false r.from_cache

let test_disk_cache () =
  let dir = Filename.temp_file "switchv" "cache" in
  Sys.remove dir;
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let c1 = Cache.on_disk dir in
  ignore (Packetgen.generate ~cache:c1 enc goals);
  (* A fresh cache instance over the same directory hits. *)
  let c2 = Cache.on_disk dir in
  let warm = Packetgen.generate ~cache:c2 enc goals in
  check_bool "fresh process hits disk cache" true warm.from_cache

(* --- goal preferences -------------------------------------------------------------- *)

let test_prefer_forwarded () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let prefer = Term.not_ enc.enc_dropped in
  (* Find a forwarding route goal; with the preference, the packet must be
     forwarded by the interpreter. *)
  let goals = Packetgen.entry_coverage_goals ~prefer enc in
  let route_goals =
    List.filter
      (fun (g : Packetgen.goal) ->
        String.length g.goal_id >= 16 && String.sub g.goal_id 0 16 = "entry:ipv4_table")
      goals
  in
  let r = Packetgen.generate enc route_goals in
  let cfg =
    { Interp.program = Middleblock.program; state = state_of entries;
      hash_mode = Interp.Fixed 0; mirror_map = [] }
  in
  let forwarded =
    List.length
      (List.filter
         (fun (tp : Packetgen.test_packet) ->
           match tp.tp_bytes with
           | Some bytes ->
               (Interp.run cfg ~ingress_port:tp.tp_port bytes).b_egress <> None
           | None -> false)
         r.packets)
  in
  check_bool
    (Printf.sprintf "most route packets forwarded (%d/%d)" forwarded
       (List.length route_goals))
    true
    (forwarded * 3 >= List.length route_goals * 2)

let test_port_cycling () =
  let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
  let enc = Symexec.encode Middleblock.program entries in
  let goals = Packetgen.entry_coverage_goals enc in
  let r = Packetgen.generate ~ports:[ 1; 2; 3; 4 ] enc goals in
  let ports =
    List.sort_uniq Int.compare
      (List.filter_map
         (fun (tp : Packetgen.test_packet) ->
           if tp.tp_bytes <> None then Some tp.tp_port else None)
         r.packets)
  in
  check_bool "all four ingress ports used" true (List.length ports = 4)

(* The incremental pipeline (shared solver, push/pop prefix scopes,
   assumption deltas) and the per-goal scratch pipeline must produce the
   byte-identical result — ports, bytes, verdicts, order. Canonical
   (lexicographically minimal) witness models are what make this hold; it
   is also why [incremental] needs no spot in the cache key. *)
let test_incremental_matches_scratch () =
  Switchv_smt.Solver.check_models := true;
  Fun.protect
    ~finally:(fun () -> Switchv_smt.Solver.check_models := false)
    (fun () ->
      let entries = Workload.generate ~seed:4 Middleblock.program Workload.small in
      let enc = Symexec.encode Middleblock.program entries in
      let goals =
        Packetgen.entry_coverage_goals enc
        @ Packetgen.branch_coverage_goals enc
      in
      let inc = Packetgen.generate ~incremental:true enc goals in
      let scr = Packetgen.generate ~incremental:false enc goals in
      check_int "same packet count" (List.length scr.packets)
        (List.length inc.packets);
      List.iter2
        (fun (a : Packetgen.test_packet) (b : Packetgen.test_packet) ->
          Alcotest.check Alcotest.string "goal order" a.tp_goal b.tp_goal;
          check_int (a.tp_goal ^ " port") a.tp_port b.tp_port;
          check_bool (a.tp_goal ^ " bytes identical") true
            (a.tp_bytes = b.tp_bytes))
        scr.packets inc.packets;
      check_int "covered identical" scr.covered inc.covered;
      check_int "uncoverable identical" scr.uncoverable inc.uncoverable)

let () =
  Alcotest.run "symbolic"
    [ ("agreement",
       [ Alcotest.test_case "figure2" `Quick test_figure2_agreement;
         Alcotest.test_case "middleblock" `Slow test_middleblock_agreement;
         Alcotest.test_case "cerberus" `Slow test_cerberus_agreement;
         Alcotest.test_case "packets reparse" `Quick test_generated_packets_reparse ]);
      ("wellformedness",
       [ Alcotest.test_case "impossible validity combos" `Quick
           test_wellformedness_excludes_nonsense;
         Alcotest.test_case "route shadowing" `Quick test_shadowed_entry_uncoverable ]);
      ("wcmp", [ Alcotest.test_case "selector coverable" `Quick test_selector_goals_coverable ]);
      ("semantics",
       [ QCheck_alcotest.to_alcotest prop_symbolic_outputs_match_interp ]);
      ("trace coverage",
       [ Alcotest.test_case "combinations" `Quick test_trace_coverage_combinations;
         Alcotest.test_case "truncation" `Quick test_trace_coverage_truncation ]);
      ("cache",
       [ Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
         Alcotest.test_case "invalidation" `Quick test_cache_invalidation;
         Alcotest.test_case "disk backend" `Quick test_disk_cache ]);
      ("preferences",
       [ Alcotest.test_case "prefer forwarded" `Quick test_prefer_forwarded;
         Alcotest.test_case "port cycling" `Quick test_port_cycling ]);
      ("incremental",
       [ Alcotest.test_case "matches scratch byte-for-byte" `Quick
           test_incremental_matches_scratch ]) ]
