(* Tests for lib/parallel and the sharded campaigns: shard decomposition
   invariants, IPC frame decoding across split reads, fork-pool ordering +
   crash degradation, cache crash-safety (corrupt entries as misses, atomic
   stores, racy directory creation), the monotonic-ish clock, and the
   headline determinism property — campaign and harness results at
   [jobs = 4] byte-identical to [jobs = 1]. *)

module Shard = Switchv_parallel.Shard
module Ipc = Switchv_parallel.Ipc
module Pool = Switchv_parallel.Pool
module Cache = Switchv_symbolic.Cache
module Telemetry = Switchv_telemetry.Telemetry
module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Report = Switchv_core.Report
module Harness = Switchv_core.Harness
module Control_campaign = Switchv_core.Control_campaign
module Data_campaign = Switchv_core.Data_campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_int_list = Alcotest.(check (list int))
let check_string_list = Alcotest.(check (list string))

(* --- shard decomposition --------------------------------------------------- *)

let test_shard_counts () =
  check_int_list "even split" [ 3; 3; 3 ]
    (Array.to_list (Shard.counts ~total:9 ~shards:3));
  check_int_list "remainder goes to earlier shards" [ 3; 3; 2; 2 ]
    (Array.to_list (Shard.counts ~total:10 ~shards:4));
  check_int_list "more shards than items" [ 1; 1; 0 ]
    (Array.to_list (Shard.counts ~total:2 ~shards:3));
  check_int_list "shards clamped to 1" [ 5 ]
    (Array.to_list (Shard.counts ~total:5 ~shards:0))

let test_shard_partition () =
  let xs = List.init 11 (fun i -> i) in
  let slices = Shard.partition ~shards:4 xs in
  (* Concatenating slices in shard order rebuilds the input. *)
  check_int_list "concatenation rebuilds input" xs
    (List.concat_map snd (Array.to_list slices));
  (* Each slice's offset is its global start index. *)
  Array.iter
    (fun (off, slice) ->
      match slice with
      | x :: _ -> check_int "offset is global index of slice head" x off
      | [] -> ())
    slices

let test_shard_assignment () =
  let plan = Shard.assignment ~jobs:3 ~shards:8 in
  check_int "one slot per worker" 3 (Array.length plan);
  (* Every shard appears exactly once, ascending within each worker. *)
  let all = List.sort compare (List.concat (Array.to_list plan)) in
  check_int_list "every shard assigned once" [ 0; 1; 2; 3; 4; 5; 6; 7 ] all;
  Array.iter
    (fun shards -> check_bool "ascending" true (List.sort compare shards = shards))
    plan;
  check_int "jobs capped by shards" 2 (Array.length (Shard.assignment ~jobs:9 ~shards:2))

(* --- IPC framing ----------------------------------------------------------- *)

let test_ipc_split_frames () =
  (* Two frames fed one byte at a time must decode to the original
     payloads, in order — the parent never sees aligned reads. *)
  let payloads = [ "hello"; String.make 300 'x'; "" ] in
  let rfd, wfd = Unix.pipe () in
  List.iter (Ipc.write_frame wfd) payloads;
  Unix.close wfd;
  let dec = Ipc.decoder () in
  let out = ref [] in
  let byte = Bytes.create 1 in
  let rec pump () =
    match Unix.read rfd byte 0 1 with
    | 0 -> ()
    | _ ->
        Ipc.feed dec byte 1;
        let rec drain () =
          match Ipc.next dec with
          | Some p ->
              out := p :: !out;
              drain ()
          | None -> ()
        in
        drain ();
        pump ()
  in
  pump ();
  Unix.close rfd;
  check_string_list "frames round-trip across split reads" payloads
    (List.rev !out);
  check_bool "no torn tail" false (Ipc.pending dec)

(* --- clock ------------------------------------------------------------------ *)

let test_clock_clamps () =
  let t = Telemetry.Clock.now () in
  check_bool "duration from the future clamps to zero" true
    (Telemetry.Clock.duration ~since:(t +. 1000.) = 0.);
  check_bool "now never decreases" true (Telemetry.Clock.now () >= t)

(* --- telemetry export / absorb ---------------------------------------------- *)

let test_export_absorb () =
  let a = Telemetry.create () in
  let b = Telemetry.create () in
  Telemetry.incr a "c" ~n:2;
  Telemetry.observe a "h" 0.001;
  Telemetry.incr b "c" ~n:3;
  Telemetry.observe b "h" 0.002;
  Telemetry.observe b "h" 0.004;
  Telemetry.absorb a (Telemetry.export b);
  check_int "counters add" 5 (Telemetry.counter a "c");
  let snap = Telemetry.snapshot a in
  let h = List.assoc "h" snap.Telemetry.snap_histograms in
  check_int "histogram counts add" 3 h.Telemetry.hs_count

(* --- cache crash-safety ----------------------------------------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "swv_cache_test_%d_%d" (Unix.getpid ()) !n)
    in
    d

let cache_file dir key = Filename.concat dir (key ^ ".cache")

let test_cache_corrupt_entry_is_miss () =
  let dir = fresh_dir () in
  let c = Cache.on_disk dir in
  Cache.store c ~key:"k" "payload";
  check_bool "stored entry found" true (Cache.find c ~key:"k" = Some "payload");
  (* Corrupt the file in place: a torn write truncates the payload below
     the length the header promises. *)
  let file = cache_file dir "k" in
  let oc = open_out_bin file in
  output_string oc "swvc1 7\npay";
  close_out oc;
  (* A fresh handle forces the read through the disk layer — [c] still
     holds the payload in its in-memory table, as it should. *)
  let c2 = Cache.on_disk dir in
  let tele = Telemetry.create () in
  let dropped, recovered =
    Telemetry.with_registry tele (fun () ->
        let miss = Cache.find c2 ~key:"k" in
        (* Recovery: re-store overwrites the corrupt entry atomically. *)
        Cache.store c2 ~key:"k" "payload2";
        (miss, Cache.find (Cache.on_disk dir) ~key:"k"))
  in
  check_bool "corrupt entry is a miss" true (dropped = None);
  check_int "corrupt_dropped counted" 1 (Telemetry.counter tele "cache.corrupt_dropped");
  check_bool "re-store recovers" true (recovered = Some "payload2");
  (* Old-format files (no header) are also treated as corrupt. *)
  let oc = open_out_bin (cache_file dir "old") in
  output_string oc "raw-legacy-payload";
  close_out oc;
  check_bool "headerless entry is a miss" true (Cache.find c ~key:"old" = None)

let test_cache_atomic_store () =
  let dir = Filename.concat (fresh_dir ()) "nested/deeper" in
  let c = Cache.on_disk dir in
  Cache.store c ~key:"k" "v";
  check_bool "recursive directory creation" true (Sys.is_directory dir);
  (* No temporary files survive a successful store. *)
  let leftovers =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> not (Filename.check_suffix f ".cache"))
  in
  check_string_list "no temp files left behind" [] leftovers;
  (* Directory creation is race-tolerant: a second cache on the same path
     must not fail. *)
  let c2 = Cache.on_disk dir in
  Cache.store c2 ~key:"k2" "v2";
  check_bool "second writer shares the directory" true
    (Cache.find c ~key:"k2" = Some "v2")

(* --- pool -------------------------------------------------------------------- *)

let test_pool_orders_results () =
  let result =
    Pool.run ~jobs:3 ~shards:7 (fun s -> Printf.sprintf "shard-%d" s)
  in
  check_int "no failures" 0 result.Pool.workers_failed;
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Done p -> check_string "results indexed by shard" (Printf.sprintf "shard-%d" i) p
      | Pool.Lost r -> Alcotest.failf "shard %d lost: %s" i r)
    result.Pool.outcomes

let test_pool_worker_crash_degrades () =
  let tele = Telemetry.create () in
  let result =
    Telemetry.with_registry tele (fun () ->
        Pool.run ~jobs:4 ~shards:4 (fun s ->
            if s = 2 then Unix.kill (Unix.getpid ()) Sys.sigkill;
            Printf.sprintf "ok-%d" s))
  in
  check_int "one worker failed" 1 result.Pool.workers_failed;
  check_int "failure counted" 1 (Telemetry.counter tele "parallel.workers_failed");
  Array.iteri
    (fun i o ->
      match (i, o) with
      | 2, Pool.Lost _ -> ()
      | 2, Pool.Done _ -> Alcotest.fail "crashed shard reported Done"
      | i, Pool.Done p -> check_string "surviving shards intact" (Printf.sprintf "ok-%d" i) p
      | i, Pool.Lost r -> Alcotest.failf "healthy shard %d lost: %s" i r)
    result.Pool.outcomes

let test_pool_merges_histogram_buckets () =
  (* Sharded quantiles must match single-process: workers export full
     bucket contents (as deltas), not summaries, so the merged histogram
     is the one a sequential run would have built. *)
  let samples s = List.init 5 (fun i -> float_of_int ((s * 5) + i + 1) *. 1e-4) in
  let single = Telemetry.create () in
  List.iter
    (fun s -> List.iter (Telemetry.observe single "task.latency") (samples s))
    [ 0; 1; 2; 3 ];
  let tele = Telemetry.create () in
  let result =
    Telemetry.with_registry tele (fun () ->
        Pool.run ~jobs:4 ~shards:4 (fun s ->
            List.iter
              (Telemetry.observe (Telemetry.get ()) "task.latency")
              (samples s);
            "ok"))
  in
  check_int "no failures" 0 result.Pool.workers_failed;
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "p%02.0f matches single-process" (100. *. p))
        true
        (Telemetry.quantile tele "task.latency" p
        = Telemetry.quantile single "task.latency" p))
    [ 0.5; 0.9; 0.99 ];
  let summary t =
    List.assoc "task.latency" (Telemetry.snapshot t).Telemetry.snap_histograms
  in
  check_int "observation counts match" (summary single).Telemetry.hs_count
    (summary tele).Telemetry.hs_count

let test_pool_merges_worker_telemetry () =
  let tele = Telemetry.create () in
  let result =
    Telemetry.with_registry tele (fun () ->
        Pool.run ~jobs:2 ~shards:4 (fun s ->
            Telemetry.incr (Telemetry.get ()) "task.ticks" ~n:(s + 1);
            "ok"))
  in
  check_int "no failures" 0 result.Pool.workers_failed;
  (* 1 + 2 + 3 + 4, accumulated across worker processes. *)
  check_int "worker counters absorbed" 10 (Telemetry.counter tele "task.ticks")

(* --- campaign determinism ----------------------------------------------------- *)

let entries = Workload.generate ~seed:3 Middleblock.program Workload.small

let fault_where pred =
  List.find (fun (f : Fault.t) -> pred f.Fault.kind)
    (Catalogue.pins Middleblock.program entries)

let incident_json incidents = List.map Report.incident_ipc_to_json incidents

let test_control_sharded_matches_sequential () =
  let fault =
    fault_where (function Fault.Reject_valid_insert _ -> true | _ -> false)
  in
  let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
  let config =
    { Control_campaign.default_config with batches = 6; seed = 11; shards = 4 }
  in
  let run jobs = Control_campaign.run_sharded ~jobs mk config in
  let i1, s1 = run 1 in
  let i2, s2 = run 2 in
  let i4, s4 = run 4 in
  check_bool "found something to compare" true (i1 <> []);
  check_string_list "jobs=2 incidents identical" (incident_json i1) (incident_json i2);
  check_string_list "jobs=4 incidents identical" (incident_json i1) (incident_json i4);
  check_int "batch counts identical" s1.Report.cs_batches s4.Report.cs_batches;
  check_int "update counts identical" s1.Report.cs_updates s2.Report.cs_updates

let test_data_sharded_matches_sequential () =
  let fault =
    fault_where (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let config =
    { (Data_campaign.default_config entries) with shards = 4; test_packet_io = false }
  in
  let run jobs =
    let stack = Stack.create ~faults:[ fault ] Middleblock.program in
    Data_campaign.run ~jobs stack config
  in
  let i1, s1 = run 1 in
  let i4, s4 = run 4 in
  check_bool "found something to compare" true (i1 <> []);
  check_string_list "jobs=4 incidents identical" (incident_json i1) (incident_json i4);
  check_int "packets tested identical" s1.Report.ds_packets_tested
    s4.Report.ds_packets_tested;
  check_int "coverage identical" s1.Report.ds_covered s4.Report.ds_covered

(* The jobs × incremental matrix: goal slicing relies on generation
   results being a pure function of the goal list, and the incremental
   SMT pipeline relies on canonical models to be indistinguishable from
   per-goal scratch solving — so all four combinations must report the
   byte-identical campaign. *)
let test_data_jobs_incremental_matrix () =
  let fault =
    fault_where (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let run ~jobs ~incremental =
    let stack = Stack.create ~faults:[ fault ] Middleblock.program in
    let config =
      { (Data_campaign.default_config entries) with
        shards = 4; test_packet_io = false; incremental }
    in
    Data_campaign.run ~jobs stack config
  in
  let base_i, base_s = run ~jobs:1 ~incremental:true in
  check_bool "found something to compare" true (base_i <> []);
  List.iter
    (fun (jobs, incremental) ->
      let i, s = run ~jobs ~incremental in
      let label =
        Printf.sprintf "jobs=%d incremental=%b identical" jobs incremental
      in
      check_string_list label (incident_json base_i) (incident_json i);
      check_int (label ^ " coverage") base_s.Report.ds_covered s.Report.ds_covered;
      check_int
        (label ^ " uncoverable")
        base_s.Report.ds_uncoverable s.Report.ds_uncoverable)
    [ (1, false); (4, true); (4, false) ]

let test_harness_report_identical_across_jobs () =
  let fault =
    fault_where (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
  let config jobs =
    { (Harness.default_config entries) with
      control = { Control_campaign.default_config with batches = 2; seed = 7; shards = 4 };
      fuzzed_data_pass = true;
      jobs;
      data_shards = 4 }
  in
  let r1 = Harness.validate mk (config 1) in
  let r4 = Harness.validate mk (config 4) in
  check_string_list "control incidents identical"
    (incident_json r1.Report.control_incidents)
    (incident_json r4.Report.control_incidents);
  check_string_list "data incidents identical"
    (incident_json r1.Report.data_incidents)
    (incident_json r4.Report.data_incidents);
  let cluster_sigs r =
    match r.Report.clusters with
    | None -> []
    | Some cs ->
        List.map
          (fun (c : Report.cluster) -> Printf.sprintf "%s x%d" c.cl_fingerprint c.cl_count)
          cs
  in
  check_string_list "clusters identical" (cluster_sigs r1) (cluster_sigs r4);
  check_bool "incidents present" true (Report.incidents r1 <> [])

(* The coverage map is built from plain counters absorbed across workers,
   and shard decomposition is jobs-invariant, so the canonical text form
   must be byte-identical for any [--jobs]. [make check-obs] re-checks the
   same property end-to-end through the CLI with [cmp]. *)
let test_coverage_map_identical_across_jobs () =
  let fault =
    fault_where (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
  let run jobs =
    let config =
      { (Harness.default_config entries) with
        control =
          { Control_campaign.default_config with batches = 2; seed = 7; shards = 4 };
        jobs;
        data_shards = 4 }
    in
    let tele = Telemetry.create () in
    Telemetry.with_registry tele (fun () -> Harness.validate mk config)
  in
  let cov_text r =
    match r.Report.coverage with
    | Some c -> Switchv_obs.Coverage.to_string c
    | None -> Alcotest.fail "report carries no coverage map"
  in
  let r1 = run 1 in
  let r4 = run 4 in
  (match r1.Report.coverage with
  | Some c -> check_bool "edges covered" true (c.Switchv_obs.Coverage.covered > 0)
  | None -> Alcotest.fail "report carries no coverage map");
  check_string "coverage map byte-identical jobs=1 vs jobs=4" (cov_text r1)
    (cov_text r4)

let () =
  Alcotest.run "parallel"
    [ ( "shard",
        [ Alcotest.test_case "counts" `Quick test_shard_counts;
          Alcotest.test_case "partition" `Quick test_shard_partition;
          Alcotest.test_case "assignment" `Quick test_shard_assignment ] );
      ( "ipc",
        [ Alcotest.test_case "split frames" `Quick test_ipc_split_frames ] );
      ( "clock",
        [ Alcotest.test_case "clamps" `Quick test_clock_clamps ] );
      ( "telemetry merge",
        [ Alcotest.test_case "export/absorb" `Quick test_export_absorb ] );
      ( "cache",
        [ Alcotest.test_case "corrupt entry is a miss" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "atomic store + racy mkdir" `Quick
            test_cache_atomic_store ] );
      ( "pool",
        [ Alcotest.test_case "results ordered by shard" `Quick
            test_pool_orders_results;
          Alcotest.test_case "worker crash degrades" `Quick
            test_pool_worker_crash_degrades;
          Alcotest.test_case "worker telemetry absorbed" `Quick
            test_pool_merges_worker_telemetry;
          Alcotest.test_case "sharded quantiles match single-process" `Quick
            test_pool_merges_histogram_buckets ] );
      ( "determinism",
        [ Alcotest.test_case "control campaign" `Quick
            test_control_sharded_matches_sequential;
          Alcotest.test_case "data campaign" `Quick
            test_data_sharded_matches_sequential;
          Alcotest.test_case "jobs x incremental matrix" `Quick
            test_data_jobs_incremental_matrix;
          Alcotest.test_case "harness report" `Quick
            test_harness_report_identical_across_jobs;
          Alcotest.test_case "coverage map" `Quick
            test_coverage_map_identical_across_jobs ] ) ]
