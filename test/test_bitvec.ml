(* Unit and property tests for the bitvector substrate. *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Rng = Switchv_bitvec.Rng

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let check_bv = Alcotest.check bv
let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

(* --- unit tests --------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun (w, n) ->
      check_int (Printf.sprintf "of_int %d@%d" n w) n
        (Bitvec.to_int_exn (Bitvec.of_int ~width:w n)))
    [ (1, 0); (1, 1); (8, 255); (16, 65535); (32, 0xDEADBEE); (48, 1 lsl 40); (62, 42) ]

let test_of_int_truncates () =
  check_bv "256 truncated to 8 bits is 0" (Bitvec.zero 8) (Bitvec.of_int ~width:8 256);
  check_bv "257 truncated to 8 bits is 1" (Bitvec.of_int ~width:8 1)
    (Bitvec.of_int ~width:8 257)

let test_bin_string () =
  let v = Bitvec.of_bin_string "10110" in
  check_int "width" 5 (Bitvec.width v);
  check_int "value" 0b10110 (Bitvec.to_int_exn v);
  check_string "roundtrip" "10110" (Bitvec.to_bin_string v)

let test_hex_string () =
  let v = Bitvec.of_hex_string ~width:32 "deadbeef" in
  check_int "value" 0xdeadbeef (Bitvec.to_int_exn v);
  check_string "to_hex" "deadbeef" (Bitvec.to_hex_string v);
  let odd = Bitvec.of_hex_string ~width:12 "abc" in
  check_string "odd width hex" "abc" (Bitvec.to_hex_string odd)

let test_arith_basics () =
  let a = Bitvec.of_int ~width:8 200 and b = Bitvec.of_int ~width:8 100 in
  check_int "add wraps" 44 (Bitvec.to_int_exn (Bitvec.add a b));
  check_int "sub" 100 (Bitvec.to_int_exn (Bitvec.sub a b));
  check_int "sub wraps" 156 (Bitvec.to_int_exn (Bitvec.sub b a));
  check_int "mul wraps" ((200 * 100) mod 256) (Bitvec.to_int_exn (Bitvec.mul a b));
  check_int "neg" 56 (Bitvec.to_int_exn (Bitvec.neg a))

let test_wide_arith () =
  (* 128-bit: (2^100 + 5) + (2^100 + 7) = 2^101 + 12 *)
  let p100 = Bitvec.shift_left (Bitvec.of_int ~width:128 1) 100 in
  let a = Bitvec.add p100 (Bitvec.of_int ~width:128 5) in
  let b = Bitvec.add p100 (Bitvec.of_int ~width:128 7) in
  let expected =
    Bitvec.add (Bitvec.shift_left (Bitvec.of_int ~width:128 1) 101)
      (Bitvec.of_int ~width:128 12)
  in
  check_bv "128-bit add" expected (Bitvec.add a b)

let test_concat_extract () =
  let hi = Bitvec.of_int ~width:8 0xAB and lo = Bitvec.of_int ~width:8 0xCD in
  let c = Bitvec.concat hi lo in
  check_int "concat width" 16 (Bitvec.width c);
  check_int "concat value" 0xABCD (Bitvec.to_int_exn c);
  check_bv "extract hi" hi (Bitvec.extract ~hi:15 ~lo:8 c);
  check_bv "extract lo" lo (Bitvec.extract ~hi:7 ~lo:0 c)

let test_shifts () =
  let v = Bitvec.of_int ~width:16 0x00FF in
  check_int "shl" 0x0FF0 (Bitvec.to_int_exn (Bitvec.shift_left v 4));
  check_int "shr" 0x000F (Bitvec.to_int_exn (Bitvec.shift_right v 4));
  check_int "shl overflow drops" 0xF000 (Bitvec.to_int_exn (Bitvec.shift_left v 12))

let test_prefix_mask () =
  check_bv "prefix 8 of 32" (Bitvec.of_int64 ~width:32 0xFF000000L)
    (Bitvec.prefix_mask ~width:32 8);
  check_bv "prefix 0" (Bitvec.zero 32) (Bitvec.prefix_mask ~width:32 0);
  check_bv "prefix full" (Bitvec.ones 32) (Bitvec.prefix_mask ~width:32 32)

let test_compare_unsigned () =
  let a = Bitvec.of_int ~width:8 200 and b = Bitvec.of_int ~width:8 100 in
  check_bool "200 > 100 unsigned" true (Bitvec.ult b a);
  check_bool "not a < b" false (Bitvec.ult a b);
  check_bool "le refl" true (Bitvec.ule a a)

let test_bytes_roundtrip () =
  let v = Bitvec.of_int64 ~width:48 0x0A0B0C0D0E0FL in
  let s = Bitvec.to_bytes_be v in
  check_int "length" 6 (String.length s);
  check_int "first byte" 0x0A (Char.code s.[0]);
  check_bv "roundtrip" v (Bitvec.of_bytes_be s)

let test_popcount () =
  check_int "popcount" 8 (Bitvec.popcount (Bitvec.of_int ~width:16 0xFF00));
  check_int "popcount ones 128" 128 (Bitvec.popcount (Bitvec.ones 128))

(* --- prefix tests ------------------------------------------------------- *)

let test_prefix_parse () =
  let p = Prefix.of_ipv4_string "10.0.0.0/8" in
  check_int "len" 8 (Prefix.len p);
  check_string "rt" "10.0.0.0/8" (Prefix.to_ipv4_string p);
  let q = Prefix.of_ipv4_string "10.*.*.*" in
  check_bool "wildcard form equals /8" true (Prefix.equal p q);
  let r = Prefix.of_ipv4_string "10.0.0.1" in
  check_int "host route" 32 (Prefix.len r)

let test_prefix_match () =
  let p = Prefix.of_ipv4_string "10.0.0.0/8" in
  let ip s =
    List.fold_left
      (fun acc o -> Bitvec.logor (Bitvec.shift_left acc 8) (Bitvec.of_int ~width:32 o))
      (Bitvec.zero 32) s
  in
  check_bool "matches inside" true (Prefix.matches p (ip [ 10; 1; 2; 3 ]));
  check_bool "no match outside" false (Prefix.matches p (ip [ 11; 1; 2; 3 ]));
  check_bool "any matches" true (Prefix.matches (Prefix.any 32) (ip [ 11; 1; 2; 3 ]))

let test_prefix_canonical () =
  (* 10.1.2.3/8 canonicalises to 10.0.0.0/8. *)
  let v = Bitvec.of_int64 ~width:32 0x0A010203L in
  let p = Prefix.make v 8 in
  check_string "canonical" "10.0.0.0/8" (Prefix.to_ipv4_string p);
  check_bool "raw not canonical" false (Prefix.is_canonical v 8)

let test_prefix_subsumes () =
  let a = Prefix.of_ipv4_string "10.0.0.0/8" in
  let b = Prefix.of_ipv4_string "10.0.0.0/16" in
  check_bool "shorter subsumes longer" true (Prefix.subsumes a b);
  check_bool "longer does not subsume" false (Prefix.subsumes b a)

(* --- ternary tests ------------------------------------------------------ *)

let test_ternary () =
  let v = Bitvec.of_int ~width:8 0b1010_1010 in
  let m = Bitvec.of_int ~width:8 0b1111_0000 in
  let t = Ternary.make ~value:v ~mask:m in
  check_bool "matches" true (Ternary.matches t (Bitvec.of_int ~width:8 0b1010_0101));
  check_bool "no match" false (Ternary.matches t (Bitvec.of_int ~width:8 0b0101_0101));
  check_bool "wildcard matches all" true
    (Ternary.matches (Ternary.wildcard 8) (Bitvec.of_int ~width:8 123));
  check_bool "exact" true (Ternary.matches (Ternary.exact v) v);
  check_bool "exact mismatch" false
    (Ternary.matches (Ternary.exact v) (Bitvec.of_int ~width:8 0))

let test_ternary_of_prefix () =
  let p = Prefix.of_ipv4_string "192.168.0.0/16" in
  let t = Ternary.of_prefix p in
  let ip = Bitvec.of_int64 ~width:32 0xC0A80101L in
  check_bool "prefix as ternary matches" true (Ternary.matches t ip)

(* --- rng determinism ---------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  let a = Rng.create 42 in
  for _ = 1 to 20 do
    if Rng.int a 1000000 <> Rng.int c 1000000 then differs := true
  done;
  check_bool "different seeds differ" true !differs

let test_rng_weighted () =
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let x = Rng.choose_weighted rng [ ("a", 0); ("b", 5) ] in
    check_string "zero-weight never chosen" "b" x
  done

(* --- property tests ------------------------------------------------------ *)

let gen_width = QCheck.Gen.oneofl [ 1; 3; 8; 16; 17; 32; 33; 48; 64; 128 ]

let gen_bv =
  QCheck.Gen.(
    gen_width >>= fun w ->
    let rng_seed = int_bound 0xFFFFFF in
    rng_seed >>= fun seed ->
    return (Rng.bitvec (Rng.create seed) w))

let arb_bv = QCheck.make ~print:(Format.asprintf "%a" Bitvec.pp) gen_bv

let gen_bv_pair =
  QCheck.Gen.(
    gen_width >>= fun w ->
    int_bound 0xFFFFFF >>= fun s1 ->
    int_bound 0xFFFFFF >>= fun s2 ->
    return (Rng.bitvec (Rng.create s1) w, Rng.bitvec (Rng.create s2) w))

let arb_bv_pair =
  QCheck.make
    ~print:(fun (a, b) -> Format.asprintf "(%a, %a)" Bitvec.pp a Bitvec.pp b)
    gen_bv_pair

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:200 arb_bv_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let prop_add_sub_inverse =
  QCheck.Test.make ~name:"(a+b)-b = a" ~count:200 arb_bv_pair (fun (a, b) ->
      Bitvec.equal (Bitvec.sub (Bitvec.add a b) b) a)

let prop_neg_involution =
  QCheck.Test.make ~name:"neg (neg a) = a" ~count:200 arb_bv (fun a ->
      Bitvec.equal (Bitvec.neg (Bitvec.neg a)) a)

let prop_lognot_involution =
  QCheck.Test.make ~name:"lognot involutive" ~count:200 arb_bv (fun a ->
      Bitvec.equal (Bitvec.lognot (Bitvec.lognot a)) a)

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan" ~count:200 arb_bv_pair (fun (a, b) ->
      Bitvec.equal
        (Bitvec.lognot (Bitvec.logand a b))
        (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)))

let prop_concat_extract =
  QCheck.Test.make ~name:"extract of concat recovers parts" ~count:200 arb_bv_pair
    (fun (a, b) ->
      let c = Bitvec.concat a b in
      let wa = Bitvec.width a and wb = Bitvec.width b in
      Bitvec.equal (Bitvec.extract ~hi:(wa + wb - 1) ~lo:wb c) a
      && Bitvec.equal (Bitvec.extract ~hi:(wb - 1) ~lo:0 c) b)

let prop_bin_roundtrip =
  QCheck.Test.make ~name:"bin string roundtrip" ~count:200 arb_bv (fun a ->
      Bitvec.equal (Bitvec.of_bin_string (Bitvec.to_bin_string a)) a)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex string roundtrip" ~count:200 arb_bv (fun a ->
      Bitvec.equal (Bitvec.of_hex_string ~width:(Bitvec.width a) (Bitvec.to_hex_string a)) a)

let prop_compare_total =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:200 arb_bv_pair (fun (a, b) ->
      Bitvec.compare a b = -Bitvec.compare b a)

let prop_shift_add =
  QCheck.Test.make ~name:"shl 1 = add self" ~count:200 arb_bv (fun a ->
      Bitvec.equal (Bitvec.shift_left a 1) (Bitvec.add a a))

let prop_prefix_matches_canonical =
  QCheck.Test.make ~name:"prefix matches own value" ~count:200
    (QCheck.make
       ~print:(fun (a, l) -> Format.asprintf "(%a, %d)" Bitvec.pp a l)
       QCheck.Gen.(
         gen_bv >>= fun v ->
         int_bound (Bitvec.width v) >>= fun l -> return (v, l)))
    (fun (v, l) ->
      let p = Prefix.make v l in
      Prefix.matches p (Prefix.value p) && Prefix.matches p v)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_comm; prop_add_sub_inverse; prop_neg_involution;
      prop_lognot_involution; prop_de_morgan; prop_concat_extract;
      prop_bin_roundtrip; prop_hex_roundtrip; prop_compare_total;
      prop_shift_add; prop_prefix_matches_canonical ]

let () =
  Alcotest.run "bitvec"
    [ ("construction",
       [ Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
         Alcotest.test_case "of_int truncates" `Quick test_of_int_truncates;
         Alcotest.test_case "bin strings" `Quick test_bin_string;
         Alcotest.test_case "hex strings" `Quick test_hex_string ]);
      ("arithmetic",
       [ Alcotest.test_case "basics" `Quick test_arith_basics;
         Alcotest.test_case "wide" `Quick test_wide_arith;
         Alcotest.test_case "shifts" `Quick test_shifts;
         Alcotest.test_case "compare" `Quick test_compare_unsigned;
         Alcotest.test_case "popcount" `Quick test_popcount ]);
      ("structure",
       [ Alcotest.test_case "concat/extract" `Quick test_concat_extract;
         Alcotest.test_case "prefix masks" `Quick test_prefix_mask;
         Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip ]);
      ("prefix",
       [ Alcotest.test_case "parse" `Quick test_prefix_parse;
         Alcotest.test_case "match" `Quick test_prefix_match;
         Alcotest.test_case "canonical" `Quick test_prefix_canonical;
         Alcotest.test_case "subsumes" `Quick test_prefix_subsumes ]);
      ("ternary",
       [ Alcotest.test_case "match" `Quick test_ternary;
         Alcotest.test_case "of_prefix" `Quick test_ternary_of_prefix ]);
      ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "weighted" `Quick test_rng_weighted ]);
      ("properties", props) ]
