(* Property-based differential tests for the SMT stack.

   Every generated QF_BV formula (see {!Qgen}) is small enough to decide
   by exhaustive enumeration of the 2^12 variable assignments; that brute
   verdict is the ground truth every solver pipeline is judged against:

     - a fresh solver per formula (assert + check),
     - a shared solver taking the formula as an assumption,
     - a shared solver using push / assert / pop scopes,
     - a shared solver assuming the formula conjunct-by-conjunct, with the
       reported unsat core re-checked against enumeration.

   Satisfying models are re-evaluated concretely (and [Solver.check_models]
   is on for the whole suite, so the solver additionally self-checks every
   model against the original terms). Canonical models must match the
   enumerated lexicographic minimum, and must agree between fresh and
   shared solvers. The preprocessor must preserve the value of the formula
   on every assignment, and cone-of-influence restriction must be implied
   by the original.

   Failures shrink to a locally minimal reproducer and report the seed.

   Environment knobs (the Makefile's check-smt target uses them):
     SWITCHV_QGEN_SEED     base seed (default 1)
     SWITCHV_QGEN_COUNT    formulas per property (default 500)
     SWITCHV_QGEN_SOAK_MS  extra randomized soak time (default 0) *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Term = Switchv_smt.Term
module Solver = Switchv_smt.Solver
module Clock = Switchv_telemetry.Telemetry.Clock

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let seed = env_int "SWITCHV_QGEN_SEED" 1
let count = env_int "SWITCHV_QGEN_COUNT" 500
let soak_ms = env_int "SWITCHV_QGEN_SOAK_MS" 0

let canonical =
  List.map (fun n -> Solver.C_bool n) Qgen.bool_universe
  @ List.map (fun (n, _) -> Solver.C_bv n) Qgen.bv_universe

(* Evaluate a solver model concretely: absent variables (never blasted)
   are unconstrained, so any fixed default is a valid completion. *)
let eval_under_model (m : Solver.model) formula =
  let env =
    { Term.bv_of =
        (fun n ->
          match m.bv n with
          | Some v -> v
          | None -> Bitvec.zero (List.assoc n Qgen.bv_universe));
      bool_of = (fun n -> Option.value ~default:false (m.bool n)) }
  in
  Term.eval_bool env formula

(* --- the property runner ------------------------------------------------- *)

(* A property maps a formula to [Some complaint] on failure. The runner
   generates [count] formulas; a failure shrinks to a locally minimal
   reproducer before reporting, so the Alcotest message is actionable. *)
let run_property ~name ~seed ~count prop =
  let guarded f =
    try prop f with
    | Alcotest.Test_error -> raise Alcotest.Test_error
    | e -> Some (Printf.sprintf "raised %s" (Printexc.to_string e))
  in
  let rng = Rng.create seed in
  for i = 1 to count do
    let f = Qgen.gen_formula rng in
    match guarded f with
    | None -> ()
    | Some complaint ->
        let minimal = Qgen.shrink ~still_fails:(fun g -> guarded g <> None) f in
        let complaint =
          match guarded minimal with Some c -> c | None -> complaint
        in
        Alcotest.failf
          "%s failed on formula %d/%d (SWITCHV_QGEN_SEED=%d): %s@.full term: \
           %s@.minimal reproducer: %s"
          name i count seed complaint (Qgen.to_string f) (Qgen.to_string minimal)
  done

(* --- properties ----------------------------------------------------------- *)

let verdict_to_string = function true -> "SAT" | false -> "UNSAT"

(* Shared solvers accumulate state across formulas on purpose — reusing
   learned clauses and Tseitin memos across unrelated queries is exactly
   the surface the incremental pipeline relies on. *)
let shared_assume = Solver.create ()
let shared_scoped = Solver.create ()
let shared_conjuncts = Solver.create ()

let prop_verdicts f =
  let brute = Qgen.brute_sat f in
  let complain mode got =
    Some
      (Printf.sprintf "%s says %s, enumeration says %s" mode
         (verdict_to_string got) (verdict_to_string brute))
  in
  let scratch =
    let s = Solver.create () in
    Solver.assert_formula s f;
    match Solver.check s with Solver.Sat _ -> true | Solver.Unsat -> false
  in
  if scratch <> brute then complain "fresh solver" scratch
  else
    let assumed =
      match Solver.check ~assumptions:[ f ] shared_assume with
      | Solver.Sat _ -> true
      | Solver.Unsat -> false
    in
    if assumed <> brute then complain "shared solver (assumption)" assumed
    else begin
      Solver.push shared_scoped;
      let scoped =
        Fun.protect
          ~finally:(fun () -> Solver.pop shared_scoped)
          (fun () ->
            Solver.assert_formula shared_scoped f;
            match Solver.check shared_scoped with
            | Solver.Sat _ -> true
            | Solver.Unsat -> false)
      in
      if scoped <> brute then complain "shared solver (push/pop)" scoped
      else
        let conjuncts = Term.flatten_conj f in
        match Solver.check_verdict ~assumptions:conjuncts shared_conjuncts with
        | Solver.V_sat m ->
            if not brute then complain "shared solver (conjuncts)" true
            else if not (eval_under_model m f) then
              Some "conjunct-assumption model does not satisfy the formula"
            else None
        | Solver.V_unsat core ->
            if brute then complain "shared solver (conjuncts)" false
            else
              (* The implicated conjunct subset must itself be unsat — that
                 is the contract packetgen's cascade skipping relies on. *)
              let implicated =
                List.filteri (fun i _ -> List.mem i core) conjuncts
              in
              if Qgen.brute_sat (Term.conj implicated) then
                Some
                  (Printf.sprintf
                     "unsat core (positions %s) is satisfiable by enumeration"
                     (String.concat "," (List.map string_of_int core)))
              else None
    end

let shared_canonical = Solver.create ()

let prop_canonical f =
  match Qgen.brute_canonical f with
  | None -> (
      match Solver.check ~assumptions:[ f ] ~canonical shared_canonical with
      | Solver.Unsat -> None
      | Solver.Sat _ -> Some "solver says SAT, enumeration says UNSAT")
  | Some best -> (
      let scratch =
        let s = Solver.create () in
        Solver.assert_formula s f;
        Solver.check ~canonical s
      in
      let shared = Solver.check ~assumptions:[ f ] ~canonical shared_canonical in
      match (scratch, shared) with
      | Solver.Unsat, _ | _, Solver.Unsat ->
          Some "solver says UNSAT, enumeration says SAT"
      | Solver.Sat m_scratch, Solver.Sat m_shared ->
          (* Variables the solver never blasted (the formula folded them
             away, or never mentioned them) are unconstrained; their
             lexicographically minimal completion is the zero/false default
             — the same default packet extraction uses. The completed model
             must therefore equal the enumerated minimum on the WHOLE
             universe, not just the mentioned variables. *)
          let check tag m =
            List.find_map
              (fun (n, w) ->
                let expect = List.assoc n best.Qgen.a_bv in
                let got =
                  Option.value ~default:(Bitvec.zero w) (m.Solver.bv n)
                in
                if Bitvec.equal got expect then None
                else
                  Some
                    (Printf.sprintf "%s: canonical %s = %s, enumeration %s" tag
                       n (Bitvec.to_hex_string got)
                       (Bitvec.to_hex_string expect)))
              Qgen.bv_universe
            |> function
            | Some e -> Some e
            | None ->
                List.find_map
                  (fun n ->
                    let expect = List.assoc n best.Qgen.a_bool in
                    let got = Option.value ~default:false (m.Solver.bool n) in
                    if got = expect then None
                    else
                      Some
                        (Printf.sprintf "%s: canonical %s = %b, enumeration %b"
                           tag n got expect))
                  Qgen.bool_universe
          in
          (match check "fresh" m_scratch with
          | Some e -> Some e
          | None -> check "shared" m_shared))

let prop_preprocess f =
  let f', _ = Term.preprocess f in
  let differs =
    List.find_opt
      (fun a ->
        let env = Qgen.env_of a in
        Term.eval_bool env f <> Term.eval_bool env f')
      (Lazy.force Qgen.assignments)
  in
  match differs with
  | None -> None
  | Some _ ->
      Some
        (Printf.sprintf "preprocess changed the formula's value: %s"
           (Qgen.to_string f'))

let prop_cone f =
  let f', _ = Term.preprocess ~roots:[ "x" ] f in
  let violating =
    List.find_opt
      (fun a ->
        let env = Qgen.env_of a in
        Term.eval_bool env f && not (Term.eval_bool env f'))
      (Lazy.force Qgen.assignments)
  in
  match violating with
  | None -> None
  | Some _ ->
      Some
        (Printf.sprintf "cone restriction not implied by the original: %s"
           (Qgen.to_string f'))

(* --- Alcotest wiring ------------------------------------------------------ *)

let test_verdicts () =
  run_property ~name:"verdict agreement" ~seed ~count prop_verdicts

let test_canonical () =
  run_property ~name:"canonical models" ~seed:(seed + 1) ~count prop_canonical

let test_preprocess () =
  run_property ~name:"preprocess equivalence" ~seed:(seed + 2) ~count
    prop_preprocess

let test_cone () =
  run_property ~name:"cone of influence" ~seed:(seed + 3) ~count prop_cone

(* Time-boxed randomized soak: keeps drawing fresh seeds until the budget
   runs out. Off by default (SWITCHV_QGEN_SOAK_MS=0) so dune runtest stays
   deterministic; make check-smt runs it with a couple of seconds. *)
let test_soak () =
  let deadline = Clock.now () +. (float_of_int soak_ms /. 1000.) in
  let round = ref 0 in
  while Clock.now () < deadline do
    incr round;
    let round_seed = (seed * 1_000_003) + !round in
    run_property ~name:"soak verdicts" ~seed:round_seed ~count:25 prop_verdicts;
    run_property ~name:"soak canonical" ~seed:(round_seed + 7919) ~count:10
      prop_canonical
  done

let () =
  Solver.check_models := true;
  Alcotest.run "smt-diff"
    [ ( "differential",
        [ Alcotest.test_case "verdict agreement vs enumeration" `Quick
            test_verdicts;
          Alcotest.test_case "canonical models vs enumeration" `Quick
            test_canonical;
          Alcotest.test_case "preprocess preserves every assignment" `Quick
            test_preprocess;
          Alcotest.test_case "cone restriction is implied" `Quick test_cone ] );
      ("soak", [ Alcotest.test_case "randomized soak" `Slow test_soak ]) ]
