(* Tests for lib/telemetry: counters, histogram quantiles at bucket
   boundaries, span nesting/ordering in the JSONL trace (with an injected
   fake clock), registry reset, and the hand-rolled JSON emitter/checker. *)

module Telemetry = Switchv_telemetry.Telemetry
module Report = Switchv_core.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let check_float name expected actual =
  Alcotest.(check (float 1e-12)) name expected actual

(* A clock that returns 0., 1., 2., ... on successive calls. *)
let fake_clock () =
  let now = ref 0. in
  fun () ->
    let v = !now in
    now := v +. 1.;
    v

(* --- counters ------------------------------------------------------------- *)

let test_counters () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  check_int "absent counter reads 0" 0 (Telemetry.counter t "x");
  Telemetry.incr t "x";
  Telemetry.incr t "x";
  Telemetry.incr ~n:40 t "x";
  check_int "incremented" 42 (Telemetry.counter t "x");
  check_int "other counters unaffected" 0 (Telemetry.counter t "y")

let test_disabled_is_noop () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  Telemetry.set_enabled t false;
  check_bool "disabled" false (Telemetry.enabled t);
  Telemetry.incr t "x";
  Telemetry.observe t "h" 0.5;
  let r = Telemetry.with_span t "span" (fun () -> 7) in
  check_int "with_span still runs the thunk" 7 r;
  check_int "no counter recorded" 0 (Telemetry.counter t "x");
  check_bool "no histogram recorded" true (Telemetry.quantile t "h" 0.5 = None);
  check_bool "no span histogram recorded" true (Telemetry.quantile t "span" 0.5 = None);
  Telemetry.set_enabled t true;
  Telemetry.incr t "x";
  check_int "re-enabled" 1 (Telemetry.counter t "x")

(* --- histogram quantiles ---------------------------------------------------- *)

let test_quantiles_at_bucket_boundaries () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  (* 50 observations in the first bucket (upper bound 1µs), 50 in the
     second (upper bound 2.5µs). Ranks landing exactly on a cumulative
     bucket edge must return that bucket's upper bound exactly. *)
  for _ = 1 to 50 do Telemetry.observe t "h" 1e-6 done;
  for _ = 1 to 50 do Telemetry.observe t "h" 2.5e-6 done;
  let q p = Option.get (Telemetry.quantile t "h" p) in
  check_float "p50 is the first bucket's upper bound" 1e-6 (q 0.5);
  check_float "p100 is the second bucket's upper bound" 2.5e-6 (q 1.0);
  (* Rank 90 falls 80% into the second bucket: linear interpolation. *)
  check_float "p90 interpolates inside the bucket" (1e-6 +. (1.5e-6 *. 0.8)) (q 0.9)

let test_quantile_overflow_and_absent () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  check_bool "absent histogram" true (Telemetry.quantile t "h" 0.5 = None);
  (* Above the last bound (10s): overflow bucket, upper edge = max observed. *)
  Telemetry.observe t "h" 50.;
  check_float "overflow quantile is the observed max" 50.
    (Option.get (Telemetry.quantile t "h" 1.0))

(* --- spans and the JSONL trace ----------------------------------------------- *)

let collect_sink () =
  let lines = ref [] in
  let sink line = lines := line :: !lines in
  ((fun () -> List.rev !lines), sink)

let test_span_nesting_and_ordering () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  let lines, sink = collect_sink () in
  Telemetry.set_sink t (Some sink);
  check_bool "tracing when sink installed" true (Telemetry.tracing t);
  Telemetry.with_span t "outer" (fun () ->
      Telemetry.with_span t "inner" (fun () -> ()));
  let lines = lines () in
  check_int "four events (two begins, two ends)" 4 (List.length lines);
  (* The fake clock ticks once per read: begin outer at 0, begin inner at 1,
     end inner at 2 (duration 1), end outer at 3 (duration 3). *)
  check_string "begin outer"
    {|{"ev":"b","span":"outer","ts":0,"sid":1,"psid":null,"depth":0,"parent":null,"seq":0}|}
    (List.nth lines 0);
  check_string "begin inner nests under outer"
    {|{"ev":"b","span":"inner","ts":1,"sid":2,"psid":1,"depth":1,"parent":"outer","seq":1}|}
    (List.nth lines 1);
  check_string "end inner"
    {|{"ev":"e","span":"inner","ts":2,"sid":2,"dur_s":1,"depth":1,"seq":2}|}
    (List.nth lines 2);
  check_string "end outer"
    {|{"ev":"e","span":"outer","ts":3,"sid":1,"dur_s":3,"depth":0,"seq":3}|}
    (List.nth lines 3);
  List.iteri
    (fun i line ->
      match Telemetry.Json.check line with
      | Ok () -> ()
      | Error m -> Alcotest.failf "event %d is not valid JSON (%s): %s" i m line)
    lines;
  (* Spans feed the histogram of the same name even while tracing. *)
  let snap = Telemetry.snapshot t in
  let outer = List.assoc "outer" snap.snap_histograms in
  check_int "outer span observed once" 1 outer.Telemetry.hs_count;
  check_float "outer span duration recorded" 3. outer.Telemetry.hs_max

let test_span_attrs_and_events () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  let lines, sink = collect_sink () in
  Telemetry.set_sink t (Some sink);
  Telemetry.with_span ~attrs:[ ("goal", "entry:t1:a") ] t "solve" (fun () ->
      Telemetry.event ~attrs:[ ("n", "3") ] t "restart");
  (match lines () with
  | [ b; i; _e ] ->
      check_string "begin event carries attrs"
        {|{"ev":"b","span":"solve","ts":0,"sid":1,"psid":null,"depth":0,"parent":null,"seq":0,"attrs":{"goal":"entry:t1:a"}}|}
        b;
      check_string "instant event inside the span"
        {|{"ev":"i","span":"restart","ts":1,"sid":2,"psid":1,"depth":1,"parent":"solve","seq":1,"attrs":{"n":"3"}}|}
        i
  | other -> Alcotest.failf "expected 3 events, got %d" (List.length other))

let test_span_exception_safety () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  let lines, sink = collect_sink () in
  Telemetry.set_sink t (Some sink);
  (try Telemetry.with_span t "boom" (fun () -> failwith "kaboom") with
  | Failure _ -> ());
  (match lines () with
  | [ _b; e ] ->
      check_bool "end event emitted on raise" true
        (String.length e > 10 && String.sub e 0 10 = {|{"ev":"e",|})
  | other -> Alcotest.failf "expected 2 events, got %d" (List.length other));
  (* The stack unwound: a new top-level span is back at depth 0. *)
  Telemetry.with_span t "after" (fun () -> ());
  let last_begin = List.nth (lines ()) 2 in
  check_bool "stack unwound after exception" true
    (String.length last_begin > 0
    && Telemetry.Json.check last_begin = Ok ()
    &&
    let contains sub =
      let ls = String.length sub and lm = String.length last_begin in
      let rec go i = i + ls <= lm && (String.sub last_begin i ls = sub || go (i + 1)) in
      go 0
    in
    contains {|"depth":0|} && contains {|"parent":null|})

let test_registry_injection_and_reset () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  let seen = Telemetry.with_registry t (fun () -> Telemetry.get () == t) in
  check_bool "with_registry installs the registry" true seen;
  check_bool "previous registry restored" true (Telemetry.get () == Telemetry.default);
  Telemetry.incr t "c";
  Telemetry.observe t "h" 1e-6;
  let _, sink = collect_sink () in
  Telemetry.set_sink t (Some sink);
  Telemetry.reset t;
  check_int "reset drops counters" 0 (Telemetry.counter t "c");
  check_bool "reset drops histograms" true (Telemetry.quantile t "h" 0.5 = None);
  check_bool "reset keeps the sink" true (Telemetry.tracing t);
  let snap = Telemetry.snapshot t in
  check_bool "snapshot empty after reset" true
    (snap.Telemetry.snap_counters = [] && snap.Telemetry.snap_histograms = [])

(* --- JSON ---------------------------------------------------------------------- *)

let test_json_check () =
  let ok s = check_bool ("valid: " ^ s) true (Telemetry.Json.check s = Ok ()) in
  let bad s =
    check_bool ("invalid: " ^ s) true
      (match Telemetry.Json.check s with Error _ -> true | Ok () -> false)
  in
  ok {|{}|};
  ok {|[]|};
  ok {|{"a":1,"b":[true,false,null],"c":{"d":"e\n"},"f":-1.5e-3}|};
  ok {|"plain string"|};
  ok "  42  ";
  bad "{";
  bad "1 2";
  bad {|{"a":}|};
  bad {|{"a":1,}|};
  bad {|[1,2|};
  bad {|"unterminated|};
  bad "01e";
  bad ""

let test_json_emitter () =
  check_string "string escaping" {|"a\"b\\c\nd"|} (Telemetry.Json.str "a\"b\\c\nd");
  check_string "nan renders as null" "null" (Telemetry.Json.num Float.nan);
  check_string "infinity renders as null" "null" (Telemetry.Json.num Float.infinity);
  List.iter
    (fun v ->
      let s = Telemetry.Json.num v in
      check_bool (Printf.sprintf "num %g is valid JSON (%s)" v s) true
        (Telemetry.Json.check s = Ok ()))
    [ 0.; 1.; -1.; 1e-6; 2.5e-6; 1e9; 0.1; 3.14159265358979 ];
  let doc =
    Telemetry.Json.obj
      [ ("a", Telemetry.Json.int 1);
        ("b", Telemetry.Json.arr [ Telemetry.Json.bool true; Telemetry.Json.str "x" ]) ]
  in
  check_string "object assembly" {|{"a":1,"b":[true,"x"]}|} doc

let test_snapshot_json () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  Telemetry.incr ~n:3 t "smt.checks";
  Telemetry.with_span t "smt.check" (fun () -> ());
  let json = Telemetry.snapshot_to_json (Telemetry.snapshot t) in
  check_bool "snapshot JSON is well-formed" true (Telemetry.Json.check json = Ok ())

(* Round-trip smoke for Report.to_json: every shape of report must emit a
   document the checker accepts. *)
let test_report_to_json () =
  let empty = Report.empty "smoke" in
  check_bool "empty report JSON well-formed" true
    (Telemetry.Json.check (Report.to_json empty) = Ok ());
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  Telemetry.incr t "oracle.incidents.status_violation";
  Telemetry.with_span t "campaign.testing" (fun () -> ());
  let full =
    { Report.program_name = "smoke \"quoted\"";
      control_incidents =
        [ Report.incident Report.Fuzzer ~kind:"status violation"
            ~detail:"newline\nand \"quotes\"" ];
      data_incidents =
        [ Report.incident Report.Symbolic ~kind:"behavior divergence" ~detail:"d" ];
      fabric_incidents =
        [ Report.incident
            ~context:(Report.context ~goal:"fabric:std:0->2" ~hop:"sw1" ())
            Report.Fabric ~kind:"fabric behavior divergence" ~detail:"f" ];
      control_stats =
        Some
          { Report.cs_batches = 2; cs_updates = 10; cs_valid_updates = 7;
            cs_invalid_updates = 3; cs_novel_edges = 4; cs_corpus_seeds = 2;
            cs_duration = 0.25 };
      data_stats =
        Some
          { Report.ds_entries_installed = 5; ds_goals = 9; ds_covered = 8;
            ds_uncoverable = 1; ds_tainted_goals = 0; ds_packets_tested = 8;
            ds_generation_time = 1.5;
            ds_testing_time = 0.5; ds_cache_hits = 0; ds_cache_misses = 9 };
      fabric_stats =
        Some
          { Report.fs_shape = "line"; fs_switches = 3; fs_links = 2;
            fs_flows = 48; fs_delivered = 33; fs_dropped = 15; fs_hops = 87;
            fs_localized = 1; fs_duration = 0.02;
            fs_switch_coverage = [ (0, 26, 54); (1, 26, 54); (2, 26, 54) ] };
      clusters =
        Some
          [ { Report.cl_fingerprint = "p4-fuzzer|status violation|d=x";
              cl_count = 3;
              cl_example =
                Report.incident Report.Fuzzer ~kind:"status violation" ~detail:"x" } ];
      telemetry = Some (Telemetry.snapshot t);
      coverage =
        Some
          { Switchv_obs.Coverage.entries =
              [ ("cov.branch.1.then", 2); ("cov.branch.1.else", 0) ];
            covered = 1; total = 2 } }
  in
  check_bool "full report JSON well-formed" true
    (Telemetry.Json.check (Report.to_json full) = Ok ())

let () =
  Alcotest.run "telemetry"
    [ ( "counters",
        [ Alcotest.test_case "incr and read" `Quick test_counters;
          Alcotest.test_case "disabled registry" `Quick test_disabled_is_noop ] );
      ( "histograms",
        [ Alcotest.test_case "bucket-boundary quantiles" `Quick
            test_quantiles_at_bucket_boundaries;
          Alcotest.test_case "overflow and absent" `Quick
            test_quantile_overflow_and_absent ] );
      ( "spans",
        [ Alcotest.test_case "nesting and ordering" `Quick
            test_span_nesting_and_ordering;
          Alcotest.test_case "attrs and instant events" `Quick
            test_span_attrs_and_events;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety ] );
      ( "registry",
        [ Alcotest.test_case "injection and reset" `Quick
            test_registry_injection_and_reset ] );
      ( "json",
        [ Alcotest.test_case "checker" `Quick test_json_check;
          Alcotest.test_case "emitter" `Quick test_json_emitter;
          Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
          Alcotest.test_case "report to_json" `Quick test_report_to_json ] ) ]
