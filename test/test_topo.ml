(* Tests for lib/topo and the fabric campaign: topology wiring invariants,
   the forwarding loop (delivery, TTL accounting, loop cutting, crashed
   switches), PTF-style end-to-end assertions, packet-out as a fabric
   injection vector, hop-localized triage (the fault-localization matrix:
   every data-plane catalogue kind seeded mid-path must fingerprint the
   introducing switch), campaign determinism across shards/jobs, and the
   observability contract (documented topo.* counters, per-switch
   coverage). *)

module Bitvec = Switchv_bitvec.Bitvec
module Packet = Switchv_packet.Packet
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module Interp = Switchv_bmv2.Interp
module Middleblock = Switchv_sai.Middleblock
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Topo = Switchv_topo.Topo
module Fabric = Switchv_topo.Fabric
module Routes = Switchv_topo.Routes
module Endtoend = Switchv_oracle.Endtoend
module Telemetry = Switchv_telemetry.Telemetry
module Jsonp = Switchv_triage.Jsonp
module Repro = Switchv_triage.Repro
module Docs = Switchv_obs.Docs
module Coverage = Switchv_obs.Coverage
module Report = Switchv_core.Report
module Fabric_campaign = Switchv_core.Fabric_campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let program = Middleblock.program

(* --- topology wiring ------------------------------------------------------- *)

let test_shapes () =
  let line = Topo.build Topo.Line 4 in
  check_int "line links" 3 (Topo.link_count line);
  check_bool "line 0-1 adjacent" true (Topo.neighbors line 1 = [ 0; 2 ]);
  let star = Topo.build Topo.Star 5 in
  check_int "star links" 4 (Topo.link_count star);
  check_int "hub degree" 4 (List.length (Topo.neighbors star 0));
  let mesh = Topo.build Topo.Mesh 4 in
  check_int "mesh links" 6 (Topo.link_count mesh);
  let ls = Topo.build Topo.Leaf_spine 6 in
  check_int "leaf-spine default spines" 2 (Topo.spines ls);
  (* 2 spines x 4 leaves, full bipartite *)
  check_int "leaf-spine links" 8 (Topo.link_count ls);
  check_bool "spines not adjacent" true (Topo.link_port ls ~src:0 ~dst:1 = None)

let test_shape_strings () =
  List.iter
    (fun s ->
      match Topo.shape_of_string (Topo.shape_to_string s) with
      | Ok s' -> check_bool "roundtrip" true (s = s')
      | Error e -> Alcotest.fail e)
    Topo.all_shapes;
  check_bool "leaf-spine alias" true
    (Topo.shape_of_string "leaf-spine" = Ok Topo.Leaf_spine);
  check_bool "unknown shape" true (Result.is_error (Topo.shape_of_string "ring"))

let test_link_table () =
  let t = Topo.build Topo.Line 3 in
  (* Ports number 1..degree in ascending neighbor order. *)
  check_bool "sw1 port 1 faces sw0" true
    (Topo.link_port t ~src:1 ~dst:0 = Some 1);
  check_bool "sw1 port 2 faces sw2" true
    (Topo.link_port t ~src:1 ~dst:2 = Some 2);
  (* peer is symmetric and inverse of link_port. *)
  List.iter
    (fun ((a, pa), (b, pb)) ->
      check_bool "peer a->b" true (Topo.peer t ~switch:a ~port:pa = Some (b, pb));
      check_bool "peer b->a" true (Topo.peer t ~switch:b ~port:pb = Some (a, pa)))
    (Topo.links t);
  (* The edge port is never linked. *)
  for s = 0 to 2 do
    check_bool "edge port unlinked" true
      (Topo.peer t ~switch:s ~port:Topo.edge_port = None)
  done

let test_paths () =
  let t = Topo.build Topo.Line 4 in
  check_bool "line path" true (Topo.path t ~src:0 ~dst:3 = Some [ 0; 1; 2; 3 ]);
  check_bool "self path" true (Topo.path t ~src:2 ~dst:2 = Some [ 2 ]);
  check_bool "next hop" true (Topo.next_hop t ~src:0 ~dst:3 = Some 1);
  let star = Topo.build Topo.Star 4 in
  check_bool "leaf-to-leaf via hub" true
    (Topo.path star ~src:1 ~dst:3 = Some [ 1; 0; 3 ]);
  (* Deterministic tie-break: lowest switch index. *)
  let mesh = Topo.build Topo.Mesh 4 in
  check_bool "mesh direct" true (Topo.path mesh ~src:1 ~dst:3 = Some [ 1; 3 ])

let test_build_validation () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "zero switches" true (raises (fun () -> Topo.build Topo.Line 0));
  check_bool "too many" true (raises (fun () -> Topo.build Topo.Mesh 65));
  check_bool "no leaves left" true
    (raises (fun () -> Topo.build ~spines:3 Topo.Leaf_spine 3))

(* --- a programmed stack fabric --------------------------------------------- *)

let flow_packet ?(dscp = 0) ~entry ~src ~dst ~ttl () =
  let p = Packet.empty in
  let p =
    Packet.push p
      (Packet.ethernet_frame ~src:(Routes.host_mac_string src)
         ~dst:(Routes.router_mac_string entry) ~ether_type:0x0800 ())
  in
  let p =
    Packet.push p
      (Packet.ipv4_header ~ttl ~dscp ~src:(Routes.host_ip src)
         ~dst:(Routes.host_ip dst) ())
  in
  let p = Packet.push p (Packet.udp_header ~src_port:49152 ~dst_port:443 ()) in
  { p with Packet.payload = "switchv-fabric-payload" }

let programmed_stack ?(faults = []) topo s =
  let st = Stack.create ~faults ~hash_seed:(100 + s) program in
  check_bool "p4info ok" true (Status.is_ok (Stack.push_p4info st));
  List.iter
    (fun e ->
      let resp = Stack.write st { Request.updates = [ Request.insert e ] } in
      List.iter
        (fun s -> check_bool "entry accepted" true (Status.is_ok s))
        resp.Request.statuses)
    (Routes.entries topo program ~switch:s);
  st

let line3_fabric () =
  let topo = Topo.build Topo.Line 3 in
  let stacks = Array.init 3 (programmed_stack topo) in
  let nodes = Array.mapi (fun i st -> Fabric.stack_node i st) stacks in
  (topo, stacks, nodes)

let ttl_of bytes =
  (* ethernet (14 bytes) + ipv4: TTL is byte 8 of the IPv4 header. *)
  Char.code bytes.[14 + 8]

let test_forward_line () =
  Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
  let topo, _stacks, nodes = line3_fabric () in
  let bytes = Packet.to_bytes (flow_packet ~entry:0 ~src:0 ~dst:2 ~ttl:64 ()) in
  let tr = Fabric.forward topo nodes ~switch:0 ~port:Topo.edge_port bytes in
  check_int "three hops" 3 (List.length tr.Fabric.t_hops);
  (match tr.Fabric.t_disposition with
  | Fabric.Delivered { d_switch; d_port; d_bytes } ->
      check_int "exits at sw2" 2 d_switch;
      check_int "exits at the edge port" Topo.edge_port d_port;
      check_int "TTL decremented per hop" 61 (ttl_of d_bytes)
  | d -> Alcotest.failf "expected delivery, got %a" Fabric.pp_disposition d);
  (* TTL = hops: must die punted at the last switch, never escape. *)
  let bytes = Packet.to_bytes (flow_packet ~entry:0 ~src:0 ~dst:2 ~ttl:3 ()) in
  let tr = Fabric.forward topo nodes ~switch:0 ~port:Topo.edge_port bytes in
  match tr.Fabric.t_disposition with
  | Fabric.Dropped { d_switch; d_punted } ->
      check_int "dies at sw2" 2 d_switch;
      check_bool "punted" true d_punted
  | d -> Alcotest.failf "expected punt+drop, got %a" Fabric.pp_disposition d

let test_forward_loop_cut () =
  (* Two hand-built nodes that bounce the packet between each other
     forever: the budget must cut it and name the disposition a loop. *)
  let topo = Topo.build Topo.Line 2 in
  let bounce id =
    { Fabric.n_id = id;
      n_crashed = (fun () -> false);
      n_inject =
        (fun ~ingress_port:_ bytes ->
          { Interp.b_egress = Some 1; b_punted = false; b_mirrors = [];
            b_packet = bytes; b_trace = [] }) }
  in
  let nodes = [| bounce 0; bounce 1 |] in
  let tr = Fabric.forward ~budget:7 topo nodes ~switch:0 ~port:Topo.edge_port "x" in
  check_int "budget bounds the hops" 7 (List.length tr.Fabric.t_hops);
  match tr.Fabric.t_disposition with
  | Fabric.Budget_exhausted _ -> ()
  | d -> Alcotest.failf "expected budget exhaustion, got %a" Fabric.pp_disposition d

(* --- crashed-switch propagation (regression) ------------------------------- *)

let crash_fault =
  Fault.make ~id:"T-CRASH" ~component:Fault.P4runtime_server
    (Fault.Crash_on_delete_sequence 1) "crashes on the first delete"

let test_crashed_stack_drops () =
  Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
  let topo = Topo.build Topo.Line 3 in
  let stacks =
    Array.init 3 (fun s ->
        programmed_stack ~faults:(if s = 1 then [ crash_fault ] else []) topo s)
  in
  (* Crash sw1 with a delete batch. *)
  let victim = List.hd (Routes.entries topo program ~switch:1) in
  ignore
    (Stack.write stacks.(1) { Request.updates = [ Request.delete victim ] });
  check_bool "sw1 crashed" true (Stack.crashed stacks.(1));
  (* Regression: inject/packet_out on a crashed stack must silently drop,
     not raise — a dead switch is link-dead. *)
  let bytes = Packet.to_bytes (flow_packet ~entry:1 ~src:1 ~dst:1 ~ttl:64 ()) in
  let b = Stack.inject stacks.(1) ~ingress_port:Topo.edge_port bytes in
  check_bool "inject drops" true (b.Interp.b_egress = None && not b.Interp.b_punted);
  let po =
    { Request.po_payload = flow_packet ~entry:1 ~src:1 ~dst:1 ~ttl:64 ();
      po_egress_port = None }
  in
  let b = Stack.packet_out stacks.(1) po in
  check_bool "packet-out drops" true (b.Interp.b_egress = None);
  (* Fabric forwarding reads the crash as a dead hop mid-path. *)
  let nodes = Array.mapi (fun i st -> Fabric.stack_node i st) stacks in
  let bytes = Packet.to_bytes (flow_packet ~entry:0 ~src:0 ~dst:2 ~ttl:64 ()) in
  let tr = Fabric.forward topo nodes ~switch:0 ~port:Topo.edge_port bytes in
  match tr.Fabric.t_disposition with
  | Fabric.Dead_hop 1 -> check_int "one live hop" 1 (List.length tr.Fabric.t_hops)
  | d -> Alcotest.failf "expected dead hop at sw1, got %a" Fabric.pp_disposition d

let test_campaign_dead_switch () =
  Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
  (* Crash_on_delete_sequence 0 wedges the switch on its very first write
     batch, so sw1 is dead for the whole campaign: its setup rejections
     and every flow crossing it must attribute to sw1. *)
  let crash0 =
    Fault.make ~id:"T-CRASH0" ~component:Fault.P4runtime_server
      (Fault.Crash_on_delete_sequence 0) "crashes on the first write"
  in
  let cfg =
    { (Fabric_campaign.default_config Topo.Line 3) with
      Fabric_campaign.faults = [ (1, [ crash0 ]) ];
      max_incidents = 100 }
  in
  let incidents, stats = Fabric_campaign.run program cfg in
  check_bool "incidents reported" true (incidents <> []);
  check_bool "dead-switch incidents present" true
    (List.exists
       (fun (i : Report.incident) -> String.equal i.kind "fabric dead switch")
       incidents);
  check_bool "every hop attribution names sw1" true
    (List.for_all
       (fun (i : Report.incident) ->
         match i.context with
         | Some { ctx_hop = Some h; _ } -> String.equal h "sw1"
         | _ -> true)
       incidents);
  check_bool "dropped flows counted" true (stats.Report.fs_dropped > 0)

(* --- fault-localization matrix --------------------------------------------- *)

(* Seed sw1 of a 3-switch line with one fault of each data-plane kind and
   assert hop-differential triage blames sw1 — never an innocent
   downstream switch that merely forwarded the perturbed packet.
   [Encap_reversed_dst] is excluded: middleblock has no tunnel tables, so
   the kind cannot fire on this model. *)
let matrix_kinds =
  [ ("ttl-trap-always", Fault.Ttl_trap_always);
    ("ttl-trap-threshold", Fault.Ttl_trap_threshold 63);
    ("drop-dst-ip", Fault.Drop_dst_ip (Packet.ipv4_of_string (Routes.host_ip 2)));
    ("punt-ether-type", Fault.Punt_ether_type 0x88CC);
    ("dscp-remark", Fault.Dscp_remark_zero 8);
    ("drop-on-port", Fault.Drop_on_port 1);
    ("mirror-ignored", Fault.Mirror_ignored);
    ("punt-lost", Fault.Punt_lost);
    ("wrong-port", Fault.Forward_wrong_port_for_port 2);
    ("submit-dropped", Fault.Submit_to_ingress_dropped);
    ("po-punted-back", Fault.Packet_out_punted_back) ]

let test_localization_matrix () =
  List.iter
    (fun (name, kind) ->
      Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
      let fault =
        Fault.make ~id:("T-" ^ name) ~component:Fault.Hardware kind name
      in
      let cfg =
        { (Fabric_campaign.default_config Topo.Line 3) with
          Fabric_campaign.faults = [ (1, [ fault ]) ];
          max_incidents = 100 }
      in
      let incidents, _ = Fabric_campaign.run program cfg in
      if incidents = [] then Alcotest.failf "%s: no incidents" name;
      let hops =
        List.filter_map
          (fun (i : Report.incident) ->
            match i.context with
            | Some { ctx_hop = Some h; _ } -> Some h
            | _ -> None)
          incidents
      in
      if hops = [] then Alcotest.failf "%s: no hop-attributed incident" name;
      List.iter
        (fun h ->
          if not (String.equal h "sw1") then
            Alcotest.failf "%s: localized to %s, expected sw1" name h)
        hops;
      (* The hop survives into the fingerprint (digits un-normalized). *)
      let fingered =
        List.exists (fun i -> contains (Report.fingerprint i) "h=sw1") incidents
      in
      check_bool (name ^ ": fingerprint carries h=sw1") true fingered)
    matrix_kinds

(* --- packet-out as a fabric injection vector ------------------------------- *)

let test_packet_out_vector () =
  Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
  let topo, stacks, nodes = line3_fabric () in
  (* Submit-to-ingress at sw0, destined to host 2: the packet-out enters
     sw0's pipeline and then rides the fabric like any ingress packet. *)
  let payload = flow_packet ~entry:0 ~src:0 ~dst:2 ~ttl:64 () in
  let po = { Request.po_payload = payload; po_egress_port = None } in
  let b = Stack.packet_out stacks.(0) po in
  let tr =
    Fabric.forward_from topo nodes ~switch:0 ~ingress_port:0
      ~bytes:(Packet.to_bytes payload) b
  in
  check_int "submit traverses three switches" 3 (List.length tr.Fabric.t_hops);
  (match tr.Fabric.t_disposition with
  | Fabric.Delivered { d_switch = 2; d_port; d_bytes } ->
      check_int "delivered at sw2's edge" Topo.edge_port d_port;
      check_int "TTL decremented at every hop" 61 (ttl_of d_bytes)
  | d -> Alcotest.failf "expected delivery at sw2, got %a" Fabric.pp_disposition d);
  (* Directed packet-out across sw0's fabric link: skips sw0's pipeline,
     hops into sw1 and routes from there. *)
  let payload = flow_packet ~entry:1 ~src:0 ~dst:1 ~ttl:64 () in
  let po = { Request.po_payload = payload; po_egress_port = Some 1 } in
  let b = Stack.packet_out stacks.(0) po in
  check_bool "egressed on the requested port" true (b.Interp.b_egress = Some 1);
  let tr =
    Fabric.forward_from topo nodes ~switch:0 ~ingress_port:0
      ~bytes:(Packet.to_bytes payload) b
  in
  match tr.Fabric.t_disposition with
  | Fabric.Delivered { d_switch = 1; d_port; _ } ->
      check_int "delivered at sw1's edge" Topo.edge_port d_port
  | d -> Alcotest.failf "expected delivery at sw1, got %a" Fabric.pp_disposition d

let test_campaign_po_faults () =
  List.iter
    (fun (name, kind) ->
      Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
      let fault =
        Fault.make ~id:("T-" ^ name) ~component:Fault.Syncd kind name
      in
      let cfg =
        { (Fabric_campaign.default_config Topo.Line 3) with
          Fabric_campaign.faults = [ (1, [ fault ]) ];
          max_incidents = 100 }
      in
      let incidents, _ = Fabric_campaign.run program cfg in
      check_bool (name ^ ": caught via packet-out flows") true
        (List.exists
           (fun (i : Report.incident) ->
             match i.context with
             | Some { ctx_goal = Some g; ctx_hop = Some "sw1"; _ } ->
                 String.length g >= 9 && String.sub g 0 9 = "fabric:po"
             | _ -> false)
           incidents);
      (* Without packet-out flows the same fault goes unseen. *)
      let cfg = { cfg with Fabric_campaign.packet_out = false } in
      let incidents, _ = Fabric_campaign.run program cfg in
      check_bool (name ^ ": invisible without packet-out") true (incidents = []))
    [ ("submit-dropped", Fault.Submit_to_ingress_dropped);
      ("po-punted-back", Fault.Packet_out_punted_back) ]

(* --- clean fabrics and determinism ----------------------------------------- *)

let test_clean_shapes () =
  List.iter
    (fun shape ->
      Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
      let cfg = Fabric_campaign.default_config shape 4 in
      let incidents, stats = Fabric_campaign.run program cfg in
      check_int
        (Topo.shape_to_string shape ^ ": unseeded fabric is clean")
        0 (List.length incidents);
      check_bool "flows ran" true (stats.Report.fs_flows > 0);
      check_bool "deliveries happened" true (stats.Report.fs_delivered > 0);
      check_bool "hops accumulated" true
        (stats.Report.fs_hops >= stats.Report.fs_delivered);
      check_int "per-switch coverage rows" 4
        (List.length stats.Report.fs_switch_coverage))
    Topo.all_shapes

let fingerprints incidents = List.map Report.fingerprint incidents

let run_seeded ~shards ~jobs () =
  Telemetry.with_registry (Telemetry.create ()) @@ fun () ->
  let fault =
    Fault.make ~id:"T-DET" ~component:Fault.Hardware
      (Fault.Ttl_trap_threshold 63) "determinism probe"
  in
  let cfg =
    { (Fabric_campaign.default_config Topo.Line 3) with
      Fabric_campaign.faults = [ (1, [ fault ]) ];
      shards;
      max_incidents = 100 }
  in
  Fabric_campaign.run ~jobs program cfg

let test_determinism () =
  let i1, s1 = run_seeded ~shards:3 ~jobs:1 () in
  let i2, s2 = run_seeded ~shards:3 ~jobs:1 () in
  Alcotest.(check (list string))
    "repeat runs identical" (fingerprints i1) (fingerprints i2);
  let i4, s4 = run_seeded ~shards:3 ~jobs:2 () in
  Alcotest.(check (list string))
    "jobs=2 identical to jobs=1" (fingerprints i1) (fingerprints i4);
  check_int "flows agree" s1.Report.fs_flows s4.Report.fs_flows;
  check_int "localization agrees" s1.Report.fs_localized s4.Report.fs_localized;
  check_int "hops agree" s2.Report.fs_hops s4.Report.fs_hops

(* --- observability ---------------------------------------------------------- *)

let test_docs_and_per_switch_coverage () =
  let tele = Telemetry.create () in
  Telemetry.with_registry tele (fun () ->
      let cfg = Fabric_campaign.default_config Topo.Line 3 in
      ignore (Fabric_campaign.run program cfg));
  Alcotest.(check (list string))
    "every fabric counter documented" []
    (Docs.undocumented (Telemetry.snapshot tele));
  (* The per-switch re-emission feeds a per-switch coverage map. *)
  let c0 = Coverage.of_registry ~prefix:"topo.sw.0." tele program in
  check_bool "sw0 coverage nonzero" true (c0.Coverage.covered > 0);
  check_bool "sw0 coverage partial" true (c0.Coverage.covered < c0.Coverage.total);
  let c9 = Coverage.of_registry ~prefix:"topo.sw.9." tele program in
  check_int "absent switch covers nothing" 0 c9.Coverage.covered;
  (* Same canonical edge space as the global map. *)
  let g = Coverage.of_registry tele program in
  check_int "edge space matches" g.Coverage.total c0.Coverage.total

(* --- end-to-end assertions -------------------------------------------------- *)

let behavior ?egress ?(punted = false) bytes =
  { Interp.b_egress = egress; b_punted = punted; b_mirrors = [];
    b_packet = bytes; b_trace = [] }

let delivered_trace ~switch ~port ~bytes =
  { Fabric.t_hops =
      [ { Fabric.h_switch = switch; h_ingress = 1; h_bytes_in = bytes;
          h_behavior = behavior ~egress:port bytes } ];
    t_disposition = Fabric.Delivered { d_switch = switch; d_port = port; d_bytes = bytes } }

let dropped_trace ~switch =
  { Fabric.t_hops = [];
    t_disposition = Fabric.Dropped { d_switch = switch; d_punted = true } }

let test_endtoend_check () =
  let eq = String.equal in
  let good = delivered_trace ~switch:2 ~port:100 ~bytes:"abc" in
  let exp = Endtoend.of_trace good in
  check_bool "deliver-at matches" true (Endtoend.check ~bytes_equal:eq exp good = Ok ());
  check_bool "wrong port" true
    (Result.is_error
       (Endtoend.check ~bytes_equal:eq exp (delivered_trace ~switch:2 ~port:3 ~bytes:"abc")));
  check_bool "wrong switch" true
    (Result.is_error
       (Endtoend.check ~bytes_equal:eq exp (delivered_trace ~switch:1 ~port:100 ~bytes:"abc")));
  check_bool "wrong bytes" true
    (Result.is_error
       (Endtoend.check ~bytes_equal:eq exp (delivered_trace ~switch:2 ~port:100 ~bytes:"abd")));
  (* Pluggable comparison admits masked differences. *)
  check_bool "masked bytes admitted" true
    (Endtoend.check ~bytes_equal:(fun _ _ -> true) exp
       (delivered_trace ~switch:2 ~port:100 ~bytes:"abd")
    = Ok ());
  check_bool "unexpected delivery" true
    (Result.is_error
       (Endtoend.check ~bytes_equal:eq Endtoend.Deliver_nowhere good));
  check_bool "expected absence" true
    (Endtoend.check ~bytes_equal:eq Endtoend.Deliver_nowhere (dropped_trace ~switch:0)
    = Ok ());
  check_bool "missing delivery" true
    (Result.is_error (Endtoend.check ~bytes_equal:eq exp (dropped_trace ~switch:2)))

(* --- report plumbing -------------------------------------------------------- *)

let test_hop_in_report () =
  let i =
    Report.incident
      ~context:(Report.context ~goal:"fabric:std:0->2" ~hop:"sw1" ())
      ~repro:(Repro.Data { dr_entries = []; dr_port = 1; dr_bytes = "xy" })
      Report.Fabric ~kind:"fabric behavior divergence" ~detail:"d"
  in
  let fp = Report.fingerprint i in
  check_bool "fingerprint keeps the hop digit" true (contains fp "h=sw1");
  check_bool "goal digits normalized" true (contains fp "g=fabric:std:#->#");
  (* IPC roundtrip preserves the hop. *)
  (match Jsonp.parse (Report.incident_ipc_to_json i) with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Report.incident_of_ipc_json j with
      | Error e -> Alcotest.fail e
      | Ok i' ->
          check_string "fingerprint survives IPC" fp (Report.fingerprint i');
          check_bool "hop survives IPC" true
            (match i'.context with
            | Some { ctx_hop = Some "sw1"; _ } -> true
            | _ -> false)));
  check_bool "fabric detector roundtrip" true
    (Report.detector_of_string (Report.detector_to_string Report.Fabric)
    = Some Report.Fabric)

let test_fabric_stats_json () =
  let stats =
    { Report.fs_shape = "line"; fs_switches = 3; fs_links = 2; fs_flows = 48;
      fs_delivered = 33; fs_dropped = 15; fs_hops = 87; fs_localized = 0;
      fs_duration = 0.5; fs_switch_coverage = [ (0, 26, 54); (1, 26, 54) ] }
  in
  (match Telemetry.Json.check (Report.fabric_stats_to_json stats) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A report carrying only fabric results renders and serializes. *)
  let report =
    { (Report.empty "m") with
      Report.fabric_incidents =
        [ Report.incident Report.Fabric ~kind:"k" ~detail:"d" ];
      fabric_stats = Some stats }
  in
  check_bool "fabric incidents count" true (not (Report.clean report));
  check_bool "detected by fabric" true
    (Report.detected_by report = Some Report.Fabric);
  match Telemetry.Json.check (Report.to_json report) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "topo"
    [ ( "topology",
        [ Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "shape strings" `Quick test_shape_strings;
          Alcotest.test_case "link table" `Quick test_link_table;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "build validation" `Quick test_build_validation ] );
      ( "forwarding",
        [ Alcotest.test_case "line delivery + TTL" `Quick test_forward_line;
          Alcotest.test_case "loop cut by budget" `Quick test_forward_loop_cut;
          Alcotest.test_case "packet-out vector" `Quick test_packet_out_vector ] );
      ( "crashed",
        [ Alcotest.test_case "crashed stack drops" `Quick test_crashed_stack_drops;
          Alcotest.test_case "campaign dead switch" `Quick test_campaign_dead_switch ] );
      ( "localization",
        [ Alcotest.test_case "fault matrix blames sw1" `Slow test_localization_matrix;
          Alcotest.test_case "packet-out faults" `Quick test_campaign_po_faults ] );
      ( "campaign",
        [ Alcotest.test_case "clean on every shape" `Slow test_clean_shapes;
          Alcotest.test_case "deterministic across shards/jobs" `Slow test_determinism ] );
      ( "observability",
        [ Alcotest.test_case "docs + per-switch coverage" `Quick
            test_docs_and_per_switch_coverage ] );
      ( "endtoend",
        [ Alcotest.test_case "expectation checks" `Quick test_endtoend_check ] );
      ( "report",
        [ Alcotest.test_case "hop context + fingerprint" `Quick test_hop_in_report;
          Alcotest.test_case "fabric stats json" `Quick test_fabric_stats_json ] ) ]
