(* Tests for the P4-constraints entry-restriction language: parsing,
   printing, and evaluation over key valuations (§3 "P4-Constraints"). *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module C = Switchv_p4constraints.Constraint_lang

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let parse_exn s =
  match C.parse s with
  | Ok c -> c
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let eval_exn c lookup =
  match C.eval c lookup with
  | Ok b -> b
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let lookup_of bindings key = List.assoc_opt key bindings

let exact16 n = C.K_exact (Bitvec.of_int ~width:16 n)

(* --- parsing ------------------------------------------------------------- *)

let test_parse_simple () =
  check_bool "vrf_id != 0 parses" true (C.parse "vrf_id != 0" |> Result.is_ok);
  check_bool "true parses" true (C.parse "true" |> Result.is_ok);
  check_bool "complex parses" true
    (C.parse "!(is_ipv4 == 1 && is_ipv6 == 1) && (dst_ip::mask == 0 || is_ipv4 == 1)"
    |> Result.is_ok);
  check_bool "hex literals" true (C.parse "addr == 0xFF" |> Result.is_ok);
  check_bool "binary literals" true (C.parse "flags == 0b101" |> Result.is_ok);
  check_bool "prefix length atom" true
    (C.parse "dst::prefix_length >= 16" |> Result.is_ok)

let test_parse_errors () =
  check_bool "stray = rejected" true (C.parse "a = 1" |> Result.is_error);
  check_bool "unbalanced paren" true (C.parse "(a == 1" |> Result.is_error);
  check_bool "trailing garbage" true (C.parse "a == 1 b" |> Result.is_error);
  check_bool "bad ::field" true (C.parse "a::bogus == 1" |> Result.is_error);
  check_bool "empty" true (C.parse "" |> Result.is_error)

let test_roundtrip () =
  let inputs =
    [ "vrf_id != 0"; "(a == 1 && b == 2)"; "!(x == 1)"; "a < b || c >= 4" ]
  in
  List.iter
    (fun s ->
      let c = parse_exn s in
      let c' = parse_exn (C.to_string c) in
      check_bool ("roundtrip " ^ s) true (c = c'))
    inputs

(* --- precedence ----------------------------------------------------------- *)

let test_precedence () =
  (* a == 1 || b == 1 && c == 1  parses as  a == 1 || (b == 1 && c == 1) *)
  let c = parse_exn "a == 1 || b == 1 && c == 1" in
  let lookup = lookup_of [ ("a", exact16 0); ("b", exact16 1); ("c", exact16 0) ] in
  check_bool "|| binds looser than &&" false (eval_exn c lookup);
  let lookup2 = lookup_of [ ("a", exact16 1); ("b", exact16 0); ("c", exact16 0) ] in
  check_bool "left disjunct suffices" true (eval_exn c lookup2)

(* --- evaluation ------------------------------------------------------------ *)

let test_eval_vrf_restriction () =
  let c = parse_exn "vrf_id != 0" in
  check_bool "vrf 1 ok" true (eval_exn c (lookup_of [ ("vrf_id", exact16 1) ]));
  check_bool "vrf 0 violates" false (eval_exn c (lookup_of [ ("vrf_id", exact16 0) ]))

let test_eval_masks () =
  let c = parse_exn "dst_ip::mask == 0 || is_ipv4 == 1" in
  let wildcard = C.K_ternary (Ternary.wildcard 32) in
  let specific =
    C.K_ternary (Ternary.make ~value:(Bitvec.of_int ~width:32 10) ~mask:(Bitvec.ones 32))
  in
  let flag b = C.K_ternary (if b then Ternary.exact (Bitvec.of_int ~width:1 1) else Ternary.wildcard 1) in
  check_bool "wildcard dst ok without flag" true
    (eval_exn c (lookup_of [ ("dst_ip", wildcard); ("is_ipv4", flag false) ]));
  check_bool "specific dst requires flag" false
    (eval_exn c (lookup_of [ ("dst_ip", specific); ("is_ipv4", flag false) ]));
  check_bool "specific dst with flag ok" true
    (eval_exn c (lookup_of [ ("dst_ip", specific); ("is_ipv4", flag true) ]))

let test_eval_prefix_length () =
  let c = parse_exn "dst::prefix_length >= 16" in
  let p len = C.K_lpm (Prefix.make (Bitvec.of_int ~width:32 0) len) in
  check_bool "/24 passes" true (eval_exn c (lookup_of [ ("dst", p 24) ]));
  check_bool "/8 fails" false (eval_exn c (lookup_of [ ("dst", p 8) ]));
  check_bool "::prefix_length on exact errors" true
    (C.eval c (lookup_of [ ("dst", exact16 1) ]) |> Result.is_error)

let test_eval_oversized_constant () =
  (* Constants wider than the key must not truncate (dscp is 6 bits). *)
  let c = parse_exn "dscp < 64" in
  let dscp n = C.K_ternary (Ternary.exact (Bitvec.of_int ~width:6 n)) in
  check_bool "63 < 64" true (eval_exn c (lookup_of [ ("dscp", dscp 63) ]));
  check_bool "0 < 64" true (eval_exn c (lookup_of [ ("dscp", dscp 0) ]));
  let c2 = parse_exn "dscp == 64" in
  check_bool "nothing equals 64" false (eval_exn c2 (lookup_of [ ("dscp", dscp 0) ]))

let test_eval_unknown_key () =
  let c = parse_exn "ghost == 1" in
  check_bool "unknown key errors" true (C.eval c (lookup_of []) |> Result.is_error)

let test_eval_optional () =
  let c = parse_exn "port != 0" in
  check_bool "set optional" true
    (eval_exn c (lookup_of [ ("port", C.K_optional (Some (Bitvec.of_int ~width:16 5))) ]));
  check_bool "unset optional errors" true
    (C.eval c (lookup_of [ ("port", C.K_optional None) ]) |> Result.is_error)

let test_truthy_atom () =
  let c = parse_exn "is_ipv4" in
  check_bool "nonzero truthy" true (eval_exn c (lookup_of [ ("is_ipv4", exact16 1) ]));
  check_bool "zero falsy" false (eval_exn c (lookup_of [ ("is_ipv4", exact16 0) ]))

let test_keys () =
  let c = parse_exn "a == 1 && b::mask != 0 || a < c::prefix_length" in
  check_int "three distinct keys" 3 (List.length (C.keys c));
  check_bool "order of first use" true (C.keys c = [ "a"; "b"; "c" ])

(* Property: parse . to_string = identity on generated constraints. *)
let gen_constraint =
  QCheck.Gen.(
    let atom = oneofl [ "a"; "b"; "key_1"; "meta.vrf" ] in
    let rec go depth =
      if depth = 0 then
        map2 (fun k n -> Printf.sprintf "%s == %d" k n) atom (int_bound 100)
      else
        oneof
          [ map2 (Printf.sprintf "(%s && %s)") (go (depth - 1)) (go (depth - 1));
            map2 (Printf.sprintf "(%s || %s)") (go (depth - 1)) (go (depth - 1));
            map (Printf.sprintf "!(%s)") (go (depth - 1));
            map2 (fun k n -> Printf.sprintf "%s < %d" k n) atom (int_bound 100) ]
    in
    go 3)

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse-print roundtrip" ~count:200
    (QCheck.make ~print:(fun s -> s) gen_constraint)
    (fun s ->
      match C.parse s with
      | Error _ -> false
      | Ok c -> (
          match C.parse (C.to_string c) with
          | Ok c' -> c = c'
          | Error _ -> false))

let () =
  Alcotest.run "p4constraints"
    [ ("parsing",
       [ Alcotest.test_case "simple" `Quick test_parse_simple;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "roundtrip" `Quick test_roundtrip;
         Alcotest.test_case "precedence" `Quick test_precedence ]);
      ("evaluation",
       [ Alcotest.test_case "vrf restriction" `Quick test_eval_vrf_restriction;
         Alcotest.test_case "masks" `Quick test_eval_masks;
         Alcotest.test_case "prefix length" `Quick test_eval_prefix_length;
         Alcotest.test_case "oversized constants" `Quick test_eval_oversized_constant;
         Alcotest.test_case "unknown key" `Quick test_eval_unknown_key;
         Alcotest.test_case "optional keys" `Quick test_eval_optional;
         Alcotest.test_case "truthy atoms" `Quick test_truthy_atom;
         Alcotest.test_case "key collection" `Quick test_keys ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_parse_print_roundtrip ]) ]
