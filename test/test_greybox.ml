(* Tests for the coverage-guided greybox feedback loop: novelty-map
   folding + corpus admission, the energy-weighted power schedule, probe
   determinism, campaign-level determinism (repeat runs, jobs=1 vs
   jobs=4), the blind-mode off-switch, and concretely-covered goal
   skipping in the data campaign. *)

module Telemetry = Switchv_telemetry.Telemetry
module Coverage = Switchv_obs.Coverage
module Greybox = Switchv_fuzzer.Greybox
module P4info = Switchv_p4ir.P4info
module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Report = Switchv_core.Report
module Control_campaign = Switchv_core.Control_campaign
module Data_campaign = Switchv_core.Data_campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string_list = Alcotest.(check (list string))

let entries = Workload.generate ~seed:3 Middleblock.program Workload.small

let fault_where pred =
  List.find (fun (f : Fault.t) -> pred f.Fault.kind)
    (Catalogue.pins Middleblock.program entries)

let incident_json incidents = List.map Report.incident_ipc_to_json incidents

(* --- unit: novelty + corpus --------------------------------------------------- *)

let test_observe_folds_delta () =
  (* Campaigns run shards under [with_registry]; mirror that here so the
     corpus-admission counter (bumped via the ambient registry, like the
     scheduler counters) lands in the same place as the delta counters. *)
  let tele = Telemetry.create () in
  Telemetry.with_registry tele @@ fun () ->
  let gb = Greybox.create ~program:Middleblock.program ~seed:42 () in
  let keys = Coverage.edge_keys Middleblock.program in
  let k0 = List.nth keys 0 and k1 = List.nth keys 1 in
  check_int "fresh state covers nothing" 0 (Greybox.novel_edges gb);
  check_bool "edge not covered yet" false (Greybox.covered gb k0);
  let before = Greybox.snapshot gb tele in
  Telemetry.incr tele k0;
  Telemetry.incr tele k1 ~n:3;
  let novel =
    Greybox.observe gb tele ~before ~tables:[]
      ~seed:(Greybox.Packet (1, "probe-bytes")) ()
  in
  check_int "two edges newly reached" 2 novel;
  check_int "novelty map grew" 2 (Greybox.novel_edges gb);
  check_bool "edge now covered" true (Greybox.covered gb k0);
  check_int "novel input admitted" 1 (Greybox.corpus_size gb);
  (* Re-observing the same counters is a no-op: no delta, no novelty. *)
  let before = Greybox.snapshot gb tele in
  let again =
    Greybox.observe gb tele ~before ~tables:[]
      ~seed:(Greybox.Packet (1, "probe-bytes")) ()
  in
  check_int "no delta, no novelty" 0 again;
  check_int "corpus unchanged" 1 (Greybox.corpus_size gb);
  (* A repeat execution of an already-covered edge is not novel either. *)
  let before = Greybox.snapshot gb tele in
  Telemetry.incr tele k0;
  check_int "re-covered edge not novel" 0
    (Greybox.observe gb tele ~before ~tables:[] ());
  (* Telemetry mirrors the feedback state. *)
  check_int "novel_edges counter" 2
    (Telemetry.counter tele "fuzzer.greybox.novel_edges");
  check_int "corpus_admitted counter" 1
    (Telemetry.counter tele "fuzzer.greybox.corpus_admitted")

let test_power_schedule_favors_energized () =
  let tele = Telemetry.create () in
  Telemetry.with_registry tele @@ fun () ->
  let gb = Greybox.create ~program:Middleblock.program ~seed:7 () in
  let tables = Middleblock.info.P4info.pi_tables in
  let hot = (List.hd tables).P4info.ti_name in
  let keys = Coverage.edge_keys Middleblock.program in
  (* Credit the hot table with ~20 units of energy via novel observations. *)
  List.iteri
    (fun i k ->
      if i < 20 then begin
        let before = Greybox.snapshot gb tele in
        Telemetry.incr tele k;
        ignore (Greybox.observe gb tele ~before ~tables:[ hot ] ())
      end)
    keys;
  check_bool "energy was assigned" true
    (Telemetry.counter tele "fuzzer.greybox.energy_assigned" >= 20);
  let picks = List.init 200 (fun _ -> Greybox.pick_table gb tables) in
  let hot_picks =
    List.length (List.filter (fun (t : P4info.table) -> t.ti_name = hot) picks)
  in
  (* Weight 21 against 1 per cold table — the hot table must dominate far
     beyond its uniform share. *)
  check_bool
    (Printf.sprintf "energized table dominates (picked %d/200)" hot_picks)
    true
    (hot_picks > 100);
  check_bool "weighted picks counted" true
    (Telemetry.counter tele "fuzzer.greybox.weighted_picks" > 0)

let test_probe_stream_deterministic () =
  let stream seed =
    let gb = Greybox.create ~program:Middleblock.program ~seed () in
    List.init 20 (fun _ -> Greybox.probe_packet gb)
  in
  check_bool "same seed, same probes" true (stream 5 = stream 5);
  check_bool "different seeds differ" true (stream 5 <> stream 6)

(* --- campaign determinism ------------------------------------------------------ *)

let control_config =
  { Control_campaign.default_config with batches = 6; seed = 11; shards = 4 }

let test_control_repeat_deterministic () =
  (* With greybox on, a repeated in-process run must reproduce itself
     exactly: feedback state is shard-local and starts empty, never read
     from the ambient registry. *)
  let fault =
    fault_where (function Fault.Reject_valid_insert _ -> true | _ -> false)
  in
  let run () =
    let tele = Telemetry.create () in
    Telemetry.with_registry tele (fun () ->
        let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
        let i, s = Control_campaign.run_sharded ~jobs:1 mk control_config in
        (i, s, Telemetry.counter tele "fuzzer.greybox.probes"))
  in
  let i1, s1, p1 = run () in
  let i2, s2, p2 = run () in
  check_bool "found something to compare" true (i1 <> []);
  check_string_list "incidents identical" (incident_json i1) (incident_json i2);
  check_int "novel edges identical" s1.Report.cs_novel_edges s2.Report.cs_novel_edges;
  check_int "corpus seeds identical" s1.Report.cs_corpus_seeds s2.Report.cs_corpus_seeds;
  check_int "probe count identical" p1 p2;
  check_bool "feedback actually engaged" true
    (s1.Report.cs_novel_edges > 0 && s1.Report.cs_corpus_seeds > 0 && p1 > 0)

let test_control_jobs_identical_with_greybox () =
  let fault =
    fault_where (function Fault.Reject_valid_insert _ -> true | _ -> false)
  in
  let run jobs =
    let tele = Telemetry.create () in
    Telemetry.with_registry tele (fun () ->
        let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
        Control_campaign.run_sharded ~jobs mk control_config)
  in
  let i1, s1 = run 1 in
  let i4, s4 = run 4 in
  check_string_list "jobs=4 incidents identical" (incident_json i1) (incident_json i4);
  check_int "novel edges identical" s1.Report.cs_novel_edges s4.Report.cs_novel_edges;
  check_int "corpus seeds identical" s1.Report.cs_corpus_seeds s4.Report.cs_corpus_seeds;
  check_int "updates identical" s1.Report.cs_updates s4.Report.cs_updates

let test_data_repeat_deterministic_with_greybox () =
  let fault =
    fault_where (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let config =
    { (Data_campaign.default_config entries) with
      shards = 2; test_packet_io = false }
  in
  let run () =
    let tele = Telemetry.create () in
    Telemetry.with_registry tele (fun () ->
        let stack = Stack.create ~faults:[ fault ] Middleblock.program in
        Data_campaign.run stack config)
  in
  let i1, s1 = run () in
  let i2, s2 = run () in
  check_bool "found something to compare" true (i1 <> []);
  check_string_list "incidents identical" (incident_json i1) (incident_json i2);
  check_int "packets identical" s1.Report.ds_packets_tested s2.Report.ds_packets_tested

(* --- blind mode ---------------------------------------------------------------- *)

let test_blind_mode_runs_no_feedback () =
  (* [greybox = false] must leave zero greybox footprint: no probes, no
     packets injected by the control campaign at all, and no
     [fuzzer.greybox.*] counters in the registry. *)
  let tele = Telemetry.create () in
  let covered =
    Telemetry.with_registry tele (fun () ->
        let stack = Stack.create Middleblock.program in
        ignore
          (Control_campaign.run stack
             { control_config with shards = 1; greybox = false });
        (Coverage.of_registry tele Middleblock.program).Coverage.covered)
  in
  check_int "blind control campaign touches no edges" 0 covered;
  check_int "no probes" 0 (Telemetry.counter tele "fuzzer.greybox.probes");
  check_int "no packets injected" 0
    (Telemetry.counter tele "switch.packets_injected");
  let snap = Telemetry.snapshot tele in
  List.iter
    (fun (name, _) ->
      if
        String.length name >= 15 && String.sub name 0 15 = "fuzzer.greybox."
      then Alcotest.failf "blind mode created greybox counter %s" name)
    snap.Telemetry.snap_counters

let test_guided_out_covers_blind_control () =
  (* The feedback loop's probes drive concrete edge coverage during the
     control phase, where the blind campaign observes nothing at all; the
     corpus and the power schedule both engage on this seed. (The
     probe-budget-matched comparison against a feedback-free baseline is
     the greybox bench's gate.) *)
  let tele = Telemetry.create () in
  let covered =
    Telemetry.with_registry tele (fun () ->
        let stack = Stack.create Middleblock.program in
        ignore (Control_campaign.run stack { control_config with shards = 1 });
        (Coverage.of_registry tele Middleblock.program).Coverage.covered)
  in
  check_bool "guided control campaign covers edges" true (covered > 0);
  check_bool "corpus-seeded mutation bases drawn" true
    (Telemetry.counter tele "fuzzer.greybox.seeded_bases" > 0);
  check_bool "power schedule engaged" true
    (Telemetry.counter tele "fuzzer.greybox.weighted_picks" > 0)

(* --- concretely-covered goal skipping ------------------------------------------- *)

let test_covered_edges_skip_branch_goals () =
  let base_config =
    { (Data_campaign.default_config entries) with test_packet_io = false }
  in
  let run config =
    let tele = Telemetry.create () in
    Telemetry.with_registry tele (fun () ->
        let stack = Stack.create Middleblock.program in
        let _, s = Data_campaign.run stack config in
        (s, Telemetry.counter tele "analysis.concretely_covered_skipped"))
  in
  let s0, skipped0 = run base_config in
  check_int "nothing skipped without covered edges" 0 skipped0;
  let branch_keys =
    List.filter
      (fun k -> String.length k >= 11 && String.sub k 0 11 = "cov.branch.")
      (Coverage.edge_keys Middleblock.program)
  in
  let s1, skipped1 = run { base_config with covered_edges = branch_keys } in
  check_bool "branch goals skipped" true (skipped1 > 0);
  check_bool "goal list shrank" true (s1.Report.ds_goals < s0.Report.ds_goals);
  (* Action-edge goals are untouched: entries still get tested. *)
  check_bool "packets still tested" true (s1.Report.ds_packets_tested > 0)

let () =
  Alcotest.run "greybox"
    [ ( "feedback",
        [ Alcotest.test_case "observe folds delta" `Quick test_observe_folds_delta;
          Alcotest.test_case "power schedule favors energy" `Quick
            test_power_schedule_favors_energized;
          Alcotest.test_case "probe stream deterministic" `Quick
            test_probe_stream_deterministic ] );
      ( "determinism",
        [ Alcotest.test_case "control repeat run identical" `Quick
            test_control_repeat_deterministic;
          Alcotest.test_case "control jobs=1 vs jobs=4 identical" `Quick
            test_control_jobs_identical_with_greybox;
          Alcotest.test_case "data repeat run identical" `Quick
            test_data_repeat_deterministic_with_greybox ] );
      ( "blind",
        [ Alcotest.test_case "no feedback footprint" `Quick
            test_blind_mode_runs_no_feedback;
          Alcotest.test_case "guided out-covers blind control" `Quick
            test_guided_out_covers_blind_control ] );
      ( "goal skipping",
        [ Alcotest.test_case "covered branch goals skipped" `Quick
            test_covered_edges_skip_branch_goals ] ) ]
