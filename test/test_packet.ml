(* Tests for headers, packet construction, serialisation, and address
   parsing. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Header = Switchv_packet.Header
module Packet = Switchv_packet.Packet

let check_int = Alcotest.check Alcotest.int
let check_bool = Alcotest.check Alcotest.bool
let check_string = Alcotest.check Alcotest.string

let test_header_widths () =
  check_int "ethernet is 14 bytes" (14 * 8) (Header.width Header.ethernet);
  check_int "ipv4 is 20 bytes" (20 * 8) (Header.width Header.ipv4);
  check_int "ipv6 is 40 bytes" (40 * 8) (Header.width Header.ipv6);
  check_int "tcp is 20 bytes" (20 * 8) (Header.width Header.tcp);
  check_int "udp is 8 bytes" (8 * 8) (Header.width Header.udp);
  check_int "icmp is 8 bytes" (8 * 8) (Header.width Header.icmp);
  check_int "vlan tag is 4 bytes" (4 * 8) (Header.width Header.vlan)

let test_field_lookup () =
  check_int "ipv4 ttl" 8 (Header.field_width Header.ipv4 "ttl");
  check_int "ipv6 dst" 128 (Header.field_width Header.ipv6 "dst_addr");
  check_bool "has_field" true (Header.has_field Header.tcp "dst_port");
  check_bool "no such field" false (Header.has_field Header.tcp "ttl");
  Alcotest.check_raises "unknown field raises" Not_found (fun () ->
      ignore (Header.field_width Header.ipv4 "nope"))

let test_standard_registry () =
  check_int "nine standard headers" 9 (List.length Header.standard);
  check_bool "find ipv4" true (Header.find_standard "ipv4" <> None);
  check_bool "find nothing" true (Header.find_standard "mpls" = None)

let test_mac_parse () =
  let mac = Packet.mac_of_string "02:0a:0b:0c:0d:0e" in
  check_int "width" 48 (Bitvec.width mac);
  check_string "hex" "020a0b0c0d0e" (Bitvec.to_hex_string mac)

let test_ipv4_parse () =
  let ip = Packet.ipv4_of_string "10.1.2.3" in
  check_string "hex" "0a010203" (Bitvec.to_hex_string ip)

let test_ipv6_parse () =
  let ip = Packet.ipv6_of_string "2001:db8::1" in
  check_string "hex" "20010db8000000000000000000000001" (Bitvec.to_hex_string ip);
  let full = Packet.ipv6_of_string "1:2:3:4:5:6:7:8" in
  check_string "full form" "00010002000300040005000600070008" (Bitvec.to_hex_string full);
  let trailing = Packet.ipv6_of_string "fe80::" in
  check_string "trailing ::" "fe800000000000000000000000000000"
    (Bitvec.to_hex_string trailing)

let test_build_and_serialize () =
  let p = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.9" () in
  let bytes = Packet.to_bytes p in
  (* 14 (eth) + 20 (ipv4) + 8 (udp) + payload *)
  check_int "wire length" (14 + 20 + 8 + String.length p.payload) (String.length bytes);
  (* Ether type at offset 12. *)
  check_int "ether_type" 0x08 (Char.code bytes.[12]);
  check_int "ether_type lo" 0x00 (Char.code bytes.[13]);
  (* IPv4 dst at offset 14+16. *)
  check_int "dst first octet" 198 (Char.code bytes.[30]);
  check_int "dst last octet" 9 (Char.code bytes.[33])

let test_get_set () =
  let p = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.9" () in
  let ttl = Packet.get_exn p ~header:"ipv4" ~field:"ttl" in
  check_int "default ttl" 64 (Bitvec.to_int_exn ttl);
  let p = Packet.set p ~header:"ipv4" ~field:"ttl" (Bitvec.of_int ~width:8 5) in
  check_int "updated ttl" 5
    (Bitvec.to_int_exn (Packet.get_exn p ~header:"ipv4" ~field:"ttl"));
  check_bool "missing header" true (Packet.get p ~header:"gre" ~field:"flags" = None);
  Alcotest.check_raises "width mismatch rejected"
    (Invalid_argument "Packet.set: ipv4.ttl width mismatch") (fun () ->
      ignore (Packet.set p ~header:"ipv4" ~field:"ttl" (Bitvec.of_int ~width:16 5)))

let test_instance_validation () =
  Alcotest.check_raises "missing field rejected"
    (Invalid_argument "Packet.instance: udp expects 4 fields, got 1") (fun () ->
      ignore (Packet.instance Header.udp [ ("src_port", Bitvec.of_int ~width:16 1) ]))

let test_remove_header () =
  let p = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.9" () in
  let p' = Packet.remove_header p "udp" in
  check_bool "udp gone" false (Packet.has_header p' "udp");
  check_bool "ipv4 stays" true (Packet.has_header p' "ipv4");
  check_int "two headers left" 2 (List.length p'.headers)

let test_equal () =
  let a = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.9" () in
  let b = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.9" () in
  check_bool "structurally equal" true (Packet.equal a b);
  let c = Packet.set a ~header:"ipv4" ~field:"ttl" (Bitvec.of_int ~width:8 9) in
  check_bool "differs after set" false (Packet.equal a c);
  check_bool "compare equal" true (Packet.compare a b = 0);
  check_bool "hash equal" true (Packet.hash a = Packet.hash b)

(* Property: serialisation length is always the sum of header widths plus
   payload, and serialisation is deterministic. *)
let prop_serialize_deterministic =
  QCheck.Test.make ~name:"serialization deterministic" ~count:100
    (QCheck.make
       QCheck.Gen.(int_bound 0xFFFFFF)
       ~print:string_of_int)
    (fun seed ->
      let rng = Rng.create seed in
      let src =
        Printf.sprintf "%d.%d.%d.%d" (Rng.int rng 256) (Rng.int rng 256)
          (Rng.int rng 256) (Rng.int rng 256)
      in
      let p = Packet.simple_ipv4 ~ttl:(Rng.int rng 256) ~src ~dst:"10.0.0.1" () in
      let b1 = Packet.to_bytes p and b2 = Packet.to_bytes p in
      String.equal b1 b2 && String.length b1 = 42 + String.length p.payload)

let () =
  Alcotest.run "packet"
    [ ("headers",
       [ Alcotest.test_case "widths" `Quick test_header_widths;
         Alcotest.test_case "field lookup" `Quick test_field_lookup;
         Alcotest.test_case "registry" `Quick test_standard_registry ]);
      ("addresses",
       [ Alcotest.test_case "mac" `Quick test_mac_parse;
         Alcotest.test_case "ipv4" `Quick test_ipv4_parse;
         Alcotest.test_case "ipv6" `Quick test_ipv6_parse ]);
      ("packets",
       [ Alcotest.test_case "build and serialize" `Quick test_build_and_serialize;
         Alcotest.test_case "get/set" `Quick test_get_set;
         Alcotest.test_case "instance validation" `Quick test_instance_validation;
         Alcotest.test_case "remove header" `Quick test_remove_header;
         Alcotest.test_case "equality" `Quick test_equal ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_serialize_deterministic ]) ]
