(* Tests for the P4 IR: the type checker, P4Info derivation, and the
   pretty printer over the SAI role models. *)

module Ast = Switchv_p4ir.Ast
module Typecheck = Switchv_p4ir.Typecheck
module P4info = Switchv_p4ir.P4info
module Pretty = Switchv_p4ir.Pretty
module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Figure2 = Switchv_sai.Figure2
module Middleblock = Switchv_sai.Middleblock
module Wan = Switchv_sai.Wan
module Tor = Switchv_sai.Tor
module Cerberus = Switchv_sai.Cerberus

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let all_programs =
  [ Figure2.program; Middleblock.program; Wan.program; Tor.program;
    Cerberus.program ]

(* --- typechecking --------------------------------------------------------- *)

let test_models_typecheck () =
  List.iter
    (fun (p : Ast.program) ->
      match Typecheck.check p with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s does not typecheck: %s" p.p_name (String.concat "; " msgs))
    all_programs

let base = Figure2.program

let expect_errors label program =
  match Typecheck.check program with
  | Ok () -> Alcotest.failf "%s should not typecheck" label
  | Error _ -> ()

let test_detects_unknown_table () =
  expect_errors "unknown table in pipeline"
    { base with p_ingress = Ast.C_table "ghost_table" }

let test_detects_table_revisit () =
  (* Applying the same table twice violates the fixed-function restriction
     the paper calls out in §3. *)
  expect_errors "table applied twice"
    { base with
      p_ingress = Ast.C_seq (Ast.C_table "vrf_table", Ast.C_table "vrf_table") }

let test_detects_width_mismatch () =
  expect_errors "assignment width mismatch"
    { base with
      p_ingress =
        Ast.C_stmt
          (Ast.S_assign (Ast.meta "vrf_id", Ast.E_const (Bitvec.of_int ~width:8 1))) }

let test_detects_bad_refers_to () =
  let bad_action =
    { Ast.a_name = "bad";
      a_params = [ Ast.param ~refers_to:("no_such_table", "k") "x" 16 ];
      a_body = [] }
  in
  expect_errors "dangling @refers_to"
    { base with p_actions = bad_action :: base.p_actions }

let test_detects_bad_default_action () =
  let tables =
    List.map
      (fun (t : Ast.table) ->
        if t.t_name = "vrf_table" then { t with t_default_action = ("drop", []) }
        else t)
      base.p_tables
  in
  expect_errors "default action not in table's action list" { base with p_tables = tables }

let test_detects_duplicate_ids () =
  let tables =
    List.map (fun (t : Ast.table) -> { t with Ast.t_id = 1 }) base.p_tables
  in
  expect_errors "duplicate table ids" { base with p_tables = tables }

let test_detects_unknown_parser_state () =
  let parser =
    { Ast.start = "start";
      states =
        [ { Ast.ps_name = "start";
            ps_extract = Some "ethernet";
            ps_next = Ast.T_select (Ast.E_field (Ast.field "ethernet" "ether_type"), [], "ghost") } ] }
  in
  expect_errors "transition to unknown state" { base with p_parser = parser }

let test_error_accumulation () =
  (* All problems are reported, not just the first. *)
  let program =
    { base with
      p_ingress =
        Ast.C_seq (Ast.C_table "ghost_a", Ast.C_table "ghost_b") }
  in
  match Typecheck.check program with
  | Ok () -> Alcotest.fail "should not typecheck"
  | Error msgs -> check_bool "both errors reported" true (List.length msgs >= 2)

let test_error_dedup () =
  (* The same unknown field referenced twice in the same pipeline used to
     yield the identical message twice; now each problem is reported once,
     in first-occurrence order. *)
  let bad = Ast.C_stmt (Ast.S_assign (Ast.meta "ghost", Ast.E_const (Bitvec.of_int ~width:16 1))) in
  let program = { base with p_ingress = Ast.C_seq (bad, bad) } in
  match Typecheck.check program with
  | Ok () -> Alcotest.fail "should not typecheck"
  | Error msgs ->
      check_int "duplicate collapsed" (List.length (List.sort_uniq compare msgs))
        (List.length msgs)

(* --- lookups ---------------------------------------------------------------- *)

let test_field_width () =
  check_int "header field" 32 (Ast.field_width base (Ast.field "ipv4" "dst_addr"));
  check_int "metadata field" 16 (Ast.field_width base (Ast.meta "vrf_id"));
  check_int "standard metadata" 1 (Ast.field_width base (Ast.std "drop"));
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Ast.field_width base (Ast.field "ipv4" "nope")))

let test_field_ref_strings () =
  let fr = Ast.field "ipv4" "ttl" in
  check_string "to_string" "ipv4.ttl" (Ast.field_ref_to_string fr);
  check_bool "roundtrip" true (Ast.field_ref_of_string "ipv4.ttl" = fr);
  (* The split is at the FIRST dot, so dotted field names round-trip
     (mirror of the ':' goal-id parsing bug). *)
  let dotted = Ast.field "tunnel" "inner.ttl" in
  check_bool "dotted field roundtrip" true
    (Ast.field_ref_of_string (Ast.field_ref_to_string dotted) = dotted);
  check_bool "first-dot split" true
    (Ast.field_ref_of_string "a.b.c" = Ast.field "a" "b.c");
  let rejects s =
    match Ast.field_ref_of_string s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "field_ref_of_string %S should raise" s
  in
  rejects "nodot";
  rejects ".field";
  rejects "header.";
  rejects "."

let test_tables_in_control () =
  let tables = Ast.tables_in_control base.p_ingress in
  check_bool "all three tables applied" true
    (tables = [ "acl_pre_ingress_table"; "vrf_table"; "ipv4_table" ])

(* --- P4Info ------------------------------------------------------------------ *)

let test_p4info_structure () =
  let info = Middleblock.info in
  check_int "13 tables" 13 (List.length info.pi_tables);
  let ipv4 = Option.get (P4info.find_table info "ipv4_table") in
  check_int "two match fields" 2 (List.length ipv4.ti_match_fields);
  let vrf_key = Option.get (P4info.find_match_field ipv4 "vrf_id") in
  check_bool "vrf key refers to vrf_table" true
    (vrf_key.mf_refers_to = Some ("vrf_table", "vrf_id"));
  check_bool "lpm kind" true
    ((Option.get (P4info.find_match_field ipv4 "ipv4_dst")).mf_kind = Ast.Lpm);
  check_bool "route tables need no priority" false (P4info.requires_priority ipv4);
  let acl = Option.get (P4info.find_table info "acl_ingress_table") in
  check_bool "acl needs priority" true (P4info.requires_priority acl);
  check_bool "wcmp is a selector" true
    ((Option.get (P4info.find_table info "wcmp_group_table")).ti_selector);
  check_bool "vrf table has a restriction" true
    ((Option.get (P4info.find_table info "vrf_table")).ti_restriction <> None)

let test_p4info_digest_stable () =
  let d1 = P4info.digest Middleblock.info in
  let d2 = P4info.digest (P4info.of_program Middleblock.program) in
  check_string "digest deterministic" d1 d2;
  check_bool "distinct programs have distinct digests" true
    (d1 <> P4info.digest Wan.info)

let test_find_by_id () =
  let info = Middleblock.info in
  check_bool "id lookup" true
    ((Option.get (P4info.find_table_by_id info 4)).ti_name = "ipv4_table")

(* --- role instantiations -------------------------------------------------------- *)

let test_roles_share_blueprint () =
  (* Same component library, role-specific ACL keys (§3). *)
  let tables p = List.map (fun (t : Ast.table) -> t.Ast.t_name) p.Ast.p_tables in
  check_bool "middleblock and tor have the same tables" true
    (tables Middleblock.program = tables Tor.program);
  let acl p = Ast.find_table_exn p "acl_ingress_table" in
  let keys t = List.map (fun (k : Ast.key) -> k.Ast.k_name) t.Ast.t_keys in
  check_bool "but different ACL key sets" true
    (keys (acl Middleblock.program) <> keys (acl Tor.program));
  check_bool "wan adds tunnel table" true
    (Ast.find_table Wan.program "tunnel_table" <> None);
  check_bool "middleblock has no tunnel table" true
    (Ast.find_table Middleblock.program "tunnel_table" = None);
  check_bool "cerberus has decap" true
    (Ast.find_table Cerberus.program "decap_table" <> None)

(* --- pretty printing -------------------------------------------------------------- *)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i = i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1)) in
  go 0

let test_pretty_output () =
  let text = Pretty.program_to_string Figure2.program in
  List.iter
    (fun fragment ->
      check_bool (Printf.sprintf "output mentions %S" fragment) true
        (contains text fragment))
    [ "@entry_restriction(\"vrf_id != 0\")"; "table vrf_table";
      "@refers_to(vrf_table, vrf_id)"; "ipv4.dst_addr : lpm";
      "const default_action = drop()"; "if (headers.ipv4.isValid())" ]

(* --- textual frontend ----------------------------------------------------------- *)

module P4parser = Switchv_p4ir.P4parser

let normalize (q : Ast.program) =
  { q with
    p_ingress = Ast.normalize_control q.p_ingress;
    p_egress = Ast.normalize_control q.p_egress }

let test_parser_roundtrip () =
  List.iter
    (fun (p : Ast.program) ->
      match P4parser.roundtrip p with
      | Error msg -> Alcotest.failf "%s does not re-parse: %s" p.p_name msg
      | Ok p' ->
          check_bool (p.p_name ^ " roundtrips structurally") true
            (normalize p' = normalize p);
          check_string (p.p_name ^ " p4info digest stable")
            (P4info.digest (P4info.of_program p))
            (P4info.digest (P4info.of_program p')))
    all_programs

let test_parser_handwritten () =
  let source =
    {|
    // a tiny handwritten model
    header ethernet_t { bit<48> dst_addr; bit<48> src_addr; bit<16> ether_type; }
    struct metadata_t { bit<16> tag; }
    parser (start = start) {
      state start { packet.extract(headers.ethernet); transition accept; }
    }
    action set_tag(bit<16> tag) { meta.tag = tag; std.egress_port = tag; }
    action drop() { std.drop = 1w0x1; }
    @entry_restriction("tag != 0")
    @id(7)
    table tag_table {
      key = { meta.tag : exact @name("tag"); }
      actions = { set_tag; drop }
      const default_action = drop();
      size = 32;
    }
    control ingress {
      meta.tag = ethernet.ether_type[15:0];
      if (ethernet.ether_type == 16w0x800) { tag_table.apply(); }
    }
    control egress { }
  |}
  in
  match P4parser.parse ~name:"tiny" source with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
      (match Typecheck.check p with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "typecheck failed: %s" (String.concat "; " msgs));
      check_int "one table" 1 (List.length p.p_tables);
      let t = List.hd p.p_tables in
      check_int "table id from @id" 7 t.t_id;
      check_bool "restriction parsed" true (t.t_entry_restriction <> None);
      check_int "two actions" 2 (List.length p.p_actions)

let test_parser_errors () =
  let bad source =
    check_bool ("rejects " ^ source) true
      (P4parser.parse ~name:"bad" source |> Result.is_error)
  in
  bad "table t {";
  bad "header h_t { bit<8 f; }";
  bad "action a() { x; }";
  bad "control ingress { foo.bar(); }";
  bad "@unknown(3) table t { }"

let () =
  Alcotest.run "p4ir"
    [ ("typecheck",
       [ Alcotest.test_case "all models typecheck" `Quick test_models_typecheck;
         Alcotest.test_case "unknown table" `Quick test_detects_unknown_table;
         Alcotest.test_case "table revisit" `Quick test_detects_table_revisit;
         Alcotest.test_case "width mismatch" `Quick test_detects_width_mismatch;
         Alcotest.test_case "bad refers_to" `Quick test_detects_bad_refers_to;
         Alcotest.test_case "bad default action" `Quick test_detects_bad_default_action;
         Alcotest.test_case "duplicate ids" `Quick test_detects_duplicate_ids;
         Alcotest.test_case "unknown parser state" `Quick test_detects_unknown_parser_state;
         Alcotest.test_case "error accumulation" `Quick test_error_accumulation;
         Alcotest.test_case "error dedup" `Quick test_error_dedup ]);
      ("lookups",
       [ Alcotest.test_case "field widths" `Quick test_field_width;
         Alcotest.test_case "field ref strings" `Quick test_field_ref_strings;
         Alcotest.test_case "tables in control" `Quick test_tables_in_control ]);
      ("p4info",
       [ Alcotest.test_case "structure" `Quick test_p4info_structure;
         Alcotest.test_case "digest" `Quick test_p4info_digest_stable;
         Alcotest.test_case "find by id" `Quick test_find_by_id ]);
      ("roles", [ Alcotest.test_case "blueprint sharing" `Quick test_roles_share_blueprint ]);
      ("pretty", [ Alcotest.test_case "p4-like output" `Quick test_pretty_output ]);
      ("frontend",
       [ Alcotest.test_case "pretty-parse roundtrip" `Quick test_parser_roundtrip;
         Alcotest.test_case "handwritten source" `Quick test_parser_handwritten;
         Alcotest.test_case "syntax errors" `Quick test_parser_errors ]) ]
