(* Tests for lib/analysis: the CFG + dataflow passes, the diagnostic
   codes, agreement of branch numbering with the symbolic engine, and
   goal pruning. *)

module Ast = Switchv_p4ir.Ast
module Typecheck = Switchv_p4ir.Typecheck
module Header = Switchv_packet.Header
module Bitvec = Switchv_bitvec.Bitvec
module Constraint_lang = Switchv_p4constraints.Constraint_lang
module Analysis = Switchv_analysis.Analysis
module Diagnostics = Switchv_analysis.Diagnostics
module Taint = Switchv_analysis.Taint
module P4parser = Switchv_p4ir.P4parser
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Telemetry = Switchv_telemetry.Telemetry

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let all_models =
  [ Switchv_sai.Figure2.program; Switchv_sai.Middleblock.program;
    Switchv_sai.Wan.program; Switchv_sai.Tor.program;
    Switchv_sai.Cerberus.program ]

let codes (report : Analysis.report) =
  List.map (fun (d : Diagnostics.t) -> d.Diagnostics.d_code) report.r_diagnostics

let has_code code report = List.mem code (codes report)

let c w n = Ast.E_const (Bitvec.of_int ~width:w n)

(* A minimal well-formed base: ethernet always extracted, ipv4 behind an
   ether_type select (so ipv4 is Maybe-valid in the pipelines), one
   metadata byte that is never assigned. *)
let base_parser =
  { Ast.start = "start";
    states =
      [ { Ast.ps_name = "start"; ps_extract = Some "ethernet";
          ps_next =
            Ast.T_select
              ( Ast.E_field (Ast.field "ethernet" "ether_type"),
                [ (Bitvec.of_int ~width:16 0x0800, "parse_ipv4") ],
                "accept" ) };
        { Ast.ps_name = "parse_ipv4"; ps_extract = Some "ipv4";
          ps_next = Ast.T_accept } ] }

let table ?(id = 1) ?restriction ?(actions = [ "no_action" ]) ?(selector = false)
    name keys =
  { Ast.t_name = name; t_id = id; t_keys = keys; t_actions = actions;
    t_default_action = (List.hd actions, []); t_size = 8;
    t_entry_restriction = restriction; t_selector = selector }

let key ?(kind = Ast.Exact) name expr =
  { Ast.k_name = name; k_expr = expr; k_kind = kind; k_refers_to = None }

let no_action = { Ast.a_name = "no_action"; a_params = []; a_body = [] }

let mk ?(headers = [ Header.ethernet; Header.ipv4 ]) ?(metadata = [ ("dbg", 8) ])
    ?(actions = [ no_action ]) ?(tables = []) ?(parser = base_parser)
    ?(ingress = Ast.C_nop) ?(egress = Ast.C_nop) name =
  let program =
    { Ast.p_name = name; p_headers = headers; p_metadata = metadata;
      p_parser = parser; p_actions = actions; p_tables = tables;
      p_ingress = ingress; p_egress = egress }
  in
  Typecheck.check_exn program;
  program

(* --- the five role models lint clean ---------------------------------------- *)

let test_models_error_clean () =
  List.iter
    (fun (p : Ast.program) ->
      let report = Analysis.run p in
      let errors =
        Diagnostics.filter ~min_severity:Diagnostics.Error report.r_diagnostics
      in
      if errors <> [] then
        Alcotest.failf "%s has lint errors: %s" p.Ast.p_name
          (String.concat "; "
             (List.map (fun d -> Format.asprintf "%a" Diagnostics.pp d) errors)))
    all_models

(* --- one fixture per diagnostic code ----------------------------------------- *)

let test_never_valid_read () =
  (* gre is declared but no parser state extracts it. *)
  let p =
    mk "p4a001"
      ~headers:[ Header.ethernet; Header.ipv4; Header.gre ]
      ~tables:
        [ table "t" [ key "proto" (Ast.E_field (Ast.field "gre" "protocol")) ] ]
      ~ingress:(Ast.C_table "t")
  in
  let report = Analysis.run p in
  check_bool "P4A001 fires" true (has_code "P4A001" report);
  check_bool "is an error" true (Diagnostics.has_errors report.r_diagnostics)

let test_set_invalid_then_read () =
  let p =
    mk "p4a001-decap"
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_set_valid ("ipv4", false));
             Ast.C_if
               ( Ast.B_eq (Ast.E_field (Ast.field "ipv4" "ttl"), c 8 0),
                 Ast.C_nop, Ast.C_nop ) ])
  in
  check_bool "P4A001 fires after setInvalid" true
    (has_code "P4A001" (Analysis.run p))

let test_maybe_valid_read () =
  (* ipv4 is only extracted behind the ether_type select. *)
  let p =
    mk "p4a002"
      ~ingress:
        (Ast.C_if
           ( Ast.B_eq (Ast.E_field (Ast.field "ipv4" "ttl"), c 8 0),
             Ast.C_nop, Ast.C_nop ))
  in
  let report = Analysis.run p in
  check_bool "P4A002 fires" true (has_code "P4A002" report);
  check_bool "only a warning" false (Diagnostics.has_errors report.r_diagnostics)

let test_guarded_read_is_clean () =
  (* The same read under isValid produces nothing. *)
  let p =
    mk "guarded"
      ~ingress:
        (Ast.C_if
           ( Ast.B_is_valid "ipv4",
             Ast.C_if
               ( Ast.B_eq (Ast.E_field (Ast.field "ipv4" "ttl"), c 8 0),
                 Ast.C_nop, Ast.C_nop ),
             Ast.C_nop ))
  in
  (* (the base fixture has no tables, so no_action legitimately fires
     P4A008 — only the validity codes must stay silent) *)
  let report = Analysis.run p in
  check_bool "no P4A001" false (has_code "P4A001" report);
  check_bool "no P4A002" false (has_code "P4A002" report)

let test_dead_table () =
  (* dbg is never assigned, so it is always 0 and the guard never holds. *)
  let p =
    mk "p4a003"
      ~tables:
        [ table "dead_t"
            [ key "et" (Ast.E_field (Ast.field "ethernet" "ether_type")) ] ]
      ~ingress:
        (Ast.C_if
           ( Ast.B_eq (Ast.E_field (Ast.meta "dbg"), c 8 2),
             Ast.C_table "dead_t", Ast.C_nop ))
  in
  let report = Analysis.run p in
  check_bool "P4A003 fires" true (has_code "P4A003" report);
  check_bool "P4A006 fires for the decided branch" true
    (has_code "P4A006" report);
  check_bool "dead table in facts" true
    (List.mem "dead_t" report.r_facts.f_dead_tables)

let test_unsat_restriction () =
  let restriction =
    match Constraint_lang.parse "k == 1 && k == 2" with
    | Ok c -> c
    | Error m -> Alcotest.failf "restriction parse: %s" m
  in
  let p =
    mk "p4a004"
      ~tables:
        [ table "locked" ~restriction
            [ key "k" (Ast.E_field (Ast.std "ingress_port")) ] ]
      ~ingress:(Ast.C_table "locked")
  in
  let report = Analysis.run p in
  check_bool "P4A004 fires" true (has_code "P4A004" report);
  check_bool "unsat table in facts" true
    (List.mem "locked" report.r_facts.f_unsat_restriction_tables);
  (* and the pass is skippable *)
  check_bool "skipped when disabled" false
    (has_code "P4A004" (Analysis.run ~check_restrictions:false p))

let test_unreachable_parser_state () =
  let parser =
    { base_parser with
      Ast.states =
        base_parser.Ast.states
        @ [ { Ast.ps_name = "orphan"; ps_extract = None;
              ps_next = Ast.T_accept } ] }
  in
  check_bool "P4A005 fires" true
    (has_code "P4A005" (Analysis.run (mk "p4a005" ~parser)))

let test_decided_branch () =
  let p =
    mk "p4a006"
      ~ingress:
        (Ast.C_if
           ( Ast.B_ule (Ast.E_field (Ast.meta "dbg"), c 8 5),
             Ast.C_nop, Ast.C_nop ))
  in
  let report = Analysis.run p in
  check_bool "P4A006 fires (always true)" true (has_code "P4A006" report);
  check_bool "else arm is a dead label" true
    (List.mem "branch.1.else" report.r_facts.f_dead_branch_labels)

let test_unapplied_table () =
  let p =
    mk "p4a007"
      ~tables:
        [ table "cp_only"
            [ key "et" (Ast.E_field (Ast.field "ethernet" "ether_type")) ] ]
  in
  let report = Analysis.run p in
  check_bool "P4A007 fires" true (has_code "P4A007" report);
  check_bool "info only, not an error" false
    (Diagnostics.has_errors report.r_diagnostics);
  check_bool "unapplied in facts" true
    (List.mem "cp_only" report.r_facts.f_unapplied_tables)

let test_unreferenced_action () =
  let orphan = { Ast.a_name = "orphan_action"; a_params = []; a_body = [] } in
  let report = Analysis.run (mk "p4a008" ~actions:[ no_action; orphan ]) in
  check_bool "P4A008 fires" true (has_code "P4A008" report)

(* --- taint: P4A009 / P4A010 ---------------------------------------------------- *)

let hash_of_src =
  Ast.E_hash ("crc32", [ Ast.E_field (Ast.field "ethernet" "src_addr") ])

let bucket_meta = [ ("bucket", 16) ]

(* meta.bucket <- hash; a table keys on it. *)
let test_tainted_key () =
  let p =
    mk "p4a009" ~metadata:bucket_meta
      ~tables:[ table "hashed_t" [ key "bucket" (Ast.E_field (Ast.meta "bucket")) ] ]
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", hash_of_src));
             Ast.C_table "hashed_t" ])
  in
  let report = Analysis.run p in
  check_bool "P4A009 fires" true (has_code "P4A009" report);
  check_bool "only a warning" false (Diagnostics.has_errors report.r_diagnostics);
  check_bool "in the summary" true
    (List.mem_assoc "hashed_t" report.r_facts.f_taint.Taint.s_tainted_keys)

(* near-miss: the constant overwrite sanitizes the bucket before the read *)
let test_sanitized_key_is_clean () =
  let p =
    mk "p4a009-clean" ~metadata:bucket_meta
      ~tables:[ table "hashed_t" [ key "bucket" (Ast.E_field (Ast.meta "bucket")) ] ]
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", hash_of_src));
             Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", c 16 1));
             Ast.C_table "hashed_t" ])
  in
  let report = Analysis.run p in
  check_bool "no P4A009" false (has_code "P4A009" report);
  check_bool "taint-free summary" true (Taint.taint_free report.r_facts.f_taint)

let test_tainted_egress () =
  let p =
    mk "p4a010" ~metadata:bucket_meta
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", hash_of_src));
             Ast.C_stmt
               (Ast.S_assign
                  (Ast.std "egress_port", Ast.E_field (Ast.meta "bucket"))) ])
  in
  let report = Analysis.run p in
  check_bool "P4A010 fires" true (has_code "P4A010" report);
  check_bool "exit-tainted egress port" true
    (Taint.exit_tainted report.r_facts.f_taint "std.egress_port")

(* near-miss: the hash is computed but a constant port wins *)
let test_sanitized_egress_is_clean () =
  let p =
    mk "p4a010-clean" ~metadata:bucket_meta
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", hash_of_src));
             Ast.C_stmt
               (Ast.S_assign
                  (Ast.std "egress_port", Ast.E_field (Ast.meta "bucket")));
             Ast.C_stmt (Ast.S_assign (Ast.std "egress_port", c 16 3)) ])
  in
  let report = Analysis.run p in
  check_bool "no P4A010" false (has_code "P4A010" report);
  check_bool "egress port untainted at exit" false
    (Taint.exit_tainted report.r_facts.f_taint "std.egress_port")

(* action-selector member choice as a source: the selector table's action
   writes the egress port from its (member-chosen) parameter *)
let set_port =
  { Ast.a_name = "set_port"; a_params = [ Ast.param "port" 16 ];
    a_body = [ Ast.S_assign (Ast.std "egress_port", Ast.E_param "port") ] }

let selector_program =
  mk "selector" ~metadata:bucket_meta
    ~actions:[ no_action; set_port ]
    ~tables:
      [ table "wcmp_t" ~selector:true ~actions:[ "no_action"; "set_port" ]
          [ key "gid" (Ast.E_field (Ast.meta "bucket")) ] ]
    ~ingress:(Ast.C_table "wcmp_t")

let test_selector_source () =
  let report = Analysis.run selector_program in
  let taint = report.r_facts.f_taint in
  check_bool "P4A010 fires" true (has_code "P4A010" report);
  check_bool "selector is the source" true
    (match List.assoc_opt "std.egress_port" taint.Taint.s_exit_fields with
    | Some sources -> List.mem "selector:wcmp_t" sources
    | None -> false);
  check_bool "egress writer recorded" true
    (List.mem ("wcmp_t", "set_port") taint.Taint.s_egress_writers)

(* a tainted condition marks both arms (and nested arms) as tainted goals *)
let test_tainted_branch_labels () =
  let p =
    mk "tainted-branch" ~metadata:bucket_meta
      ~ingress:
        (Ast.seq
           [ Ast.C_stmt (Ast.S_assign (Ast.meta "bucket", hash_of_src));
             Ast.C_if
               ( Ast.B_eq (Ast.E_field (Ast.meta "bucket"), c 16 0),
                 Ast.C_nop, Ast.C_nop ) ])
  in
  let taint = (Analysis.facts p).Analysis.f_taint in
  check_bool "branch 1 recorded" true (List.mem_assoc 1 taint.Taint.s_branches);
  check_bool "both arms labelled" true
    (List.mem "branch.1.then" taint.Taint.s_branch_labels
    && List.mem "branch.1.else" taint.Taint.s_branch_labels)

(* the WCMP role model carries the expected summary *)
let test_middleblock_taint_summary () =
  let taint = (Analysis.facts Switchv_sai.Middleblock.program).Analysis.f_taint in
  check_bool "egress port tainted at exit" true
    (Taint.exit_tainted taint "std.egress_port");
  check_bool "nexthop key tainted by the selector" true
    (List.mem_assoc "nexthop_table" taint.Taint.s_tainted_keys);
  check_bool "an egress writer exists" true (taint.Taint.s_egress_writers <> []);
  check_bool "figure2 is taint-free" true
    (Taint.taint_free
       (Analysis.facts Switchv_sai.Figure2.program).Analysis.f_taint)

(* --- .p4 fixture files --------------------------------------------------------- *)

let parse_fixture name =
  (* dune runtest runs in test/; `dune exec test/...` runs in the root *)
  let path =
    let local = Filename.concat "fixtures" name in
    if Sys.file_exists local then local
    else Filename.concat "test/fixtures" name
  in
  let ic = open_in_bin path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  P4parser.parse_exn ~name source

let test_fixture_tainted () =
  let report = Analysis.run (parse_fixture "tainted.p4") in
  check_bool "P4A009 fires" true (has_code "P4A009" report);
  check_bool "P4A010 fires" true (has_code "P4A010" report);
  check_bool "warnings only" false (Diagnostics.has_errors report.r_diagnostics)

let test_fixture_untainted () =
  let report = Analysis.run (parse_fixture "untainted.p4") in
  check_bool "no P4A009" false (has_code "P4A009" report);
  check_bool "no P4A010" false (has_code "P4A010" report)

(* --- branch numbering agrees with the symbolic engine ------------------------ *)

(* ingress: if(valid ipv4) { if(dbg==2) t1 }  — branch 1 then branch 2;
   egress: if(valid ethernet) — branch 3. dbg is always 0 and ethernet is
   always valid, so branch.2.then and branch.3.else are dead. *)
let branchy =
  mk "branchy"
    ~tables:
      [ table "t1" [ key "et" (Ast.E_field (Ast.field "ethernet" "ether_type")) ] ]
    ~ingress:
      (Ast.C_if
         ( Ast.B_is_valid "ipv4",
           Ast.C_if
             ( Ast.B_eq (Ast.E_field (Ast.meta "dbg"), c 8 2),
               Ast.C_table "t1", Ast.C_nop ),
           Ast.C_nop ))
    ~egress:(Ast.C_if (Ast.B_is_valid "ethernet", Ast.C_nop, Ast.C_nop))

let test_branch_labels_match_symexec () =
  let facts = Analysis.facts branchy in
  check_bool "expected dead labels" true
    (List.sort compare facts.f_dead_branch_labels
    = [ "branch.2.then"; "branch.3.else" ]);
  let enc = Symexec.encode branchy [] in
  let symexec_labels =
    List.filter_map
      (fun (tp : Symexec.trace_point) ->
        if String.equal tp.tp_table "<if>" then Some tp.tp_label else None)
      enc.enc_trace
  in
  List.iter
    (fun label ->
      check_bool (label ^ " is a real symexec label") true
        (List.mem label symexec_labels))
    facts.f_dead_branch_labels

(* --- goal pruning ------------------------------------------------------------- *)

let test_prune_goals () =
  let enc = Symexec.encode branchy [] in
  let goals =
    Packetgen.entry_coverage_goals enc @ Packetgen.branch_coverage_goals enc
  in
  let tm = Telemetry.create () in
  Telemetry.with_registry tm (fun () ->
      let kept = Packetgen.prune_goals (Analysis.facts branchy) goals in
      (* t1 is dead: its <default> entry goal goes; so do the two dead
         branch-arm goals. *)
      check_int "three goals pruned" (List.length goals - 3) (List.length kept);
      check_int "counter recorded" 3 (Telemetry.counter tm "analysis.goals_pruned");
      check_bool "dead branch goal gone" true
        (List.for_all
           (fun (g : Packetgen.goal) ->
             g.goal_kind <> Packetgen.G_branch "branch.2.then")
           kept);
      (* custom goals survive, trace goals over dead tables do not *)
      let custom =
        Packetgen.custom_goal ~id:"explore:x" ~desc:"x" Switchv_smt.Term.tru
      in
      let trace_goal =
        { custom with
          Packetgen.goal_id = "trace:t1:x";
          goal_kind = Packetgen.G_trace "t1:<default> & other:e1" }
      in
      let kept2 =
        Packetgen.prune_goals (Analysis.facts branchy) [ custom; trace_goal ]
      in
      check_bool "custom kept, dead trace dropped" true
        (kept2 = [ custom ]))

let test_no_facts_prunes_nothing () =
  let enc = Symexec.encode branchy [] in
  let goals = Packetgen.branch_coverage_goals enc in
  let tm = Telemetry.create () in
  Telemetry.with_registry tm (fun () ->
      check_int "all kept" (List.length goals)
        (List.length (Packetgen.prune_goals Analysis.no_facts goals));
      check_int "counter materialised at 0" 0
        (Telemetry.counter tm "analysis.goals_pruned"))

(* --- diagnostics plumbing ------------------------------------------------------ *)

let test_diagnostics_module () =
  let d1 = Diagnostics.error "P4A001" ~loc:"x" "a" in
  let d2 = Diagnostics.warning "P4A002" ~loc:"y" "b" in
  let d3 = Diagnostics.info "P4A007" ~loc:"z" "c" in
  check_bool "severity order" true
    (Diagnostics.sort [ d3; d2; d1 ] = [ d1; d2; d3 ]);
  check_int "filter warning+" 2
    (List.length
       (Diagnostics.filter ~min_severity:Diagnostics.Warning [ d1; d2; d3 ]));
  check_bool "dedup keeps first" true
    (Diagnostics.dedup [ d1; d2; d1 ] = [ d1; d2 ]);
  check_bool "has_errors" true (Diagnostics.has_errors [ d3; d1 ]);
  check_bool "of_string" true
    (Diagnostics.severity_of_string "warn" = Some Diagnostics.Warning);
  check_bool "of_string unknown" true
    (Diagnostics.severity_of_string "fatal" = None)

(* identical findings surfaced through both arms of a conditional collapse
   to one reported diagnostic *)
let test_dedup_across_branch_arms () =
  let read_ttl =
    Ast.C_if
      (Ast.B_eq (Ast.E_field (Ast.field "ipv4" "ttl"), c 8 0), Ast.C_nop, Ast.C_nop)
  in
  let p =
    mk "dedup-arms"
      ~ingress:
        (Ast.C_if
           ( Ast.B_eq (Ast.E_field (Ast.field "ethernet" "ether_type"), c 16 1),
             read_ttl, read_ttl ))
  in
  let report = Analysis.run p in
  let p4a002 =
    List.filter
      (fun (d : Diagnostics.t) -> d.Diagnostics.d_code = "P4A002")
      report.r_diagnostics
  in
  check_int "one finding for both arms" 1 (List.length p4a002)

let test_sort_deterministic () =
  let w code loc msg = Diagnostics.warning code ~loc "%s" msg in
  let diags =
    [ w "P4A002" "b" "m"; w "P4A002" "a" "n"; w "P4A002" "a" "m";
      w "P4A001" "b" "m"; Diagnostics.info "P4A007" "a" ~loc:"a";
      Diagnostics.error "P4A001" "x" ~loc:"z" ]
  in
  let sorted = Diagnostics.sort diags in
  (* total key: severity desc, then loc, then code, then message — so any
     input permutation sorts identically *)
  check_bool "permutation-invariant" true
    (Diagnostics.sort (List.rev diags) = sorted);
  check_bool "error first" true
    ((List.hd sorted).Diagnostics.d_severity = Diagnostics.Error);
  let tail = List.tl sorted in
  check_bool "warnings ordered by loc, code, message" true
    (List.map (fun (d : Diagnostics.t) -> (d.Diagnostics.d_loc, d.Diagnostics.d_code, d.Diagnostics.d_message))
       (List.filteri (fun i _ -> i < 4) tail)
    = [ ("a", "P4A002", "m"); ("a", "P4A002", "n"); ("b", "P4A001", "m");
        ("b", "P4A002", "m") ])

let test_telemetry_counters () =
  let tm = Telemetry.create () in
  Telemetry.with_registry tm (fun () -> ignore (Analysis.run branchy));
  check_int "one run" 1 (Telemetry.counter tm "analysis.runs");
  (* branchy: P4A003 (error); P4A006 x2 (warning) + P4A008 for t1's
     no_action? no — dead t1 drops its actions, but no other table refs
     no_action either, so it fires too. Just check the counters exist and
     are consistent with the report. *)
  let report = Analysis.run branchy in
  check_int "error counter" (Diagnostics.count Diagnostics.Error report.r_diagnostics)
    (Telemetry.counter tm "analysis.diagnostics_error");
  check_int "warning counter"
    (Diagnostics.count Diagnostics.Warning report.r_diagnostics)
    (Telemetry.counter tm "analysis.diagnostics_warning")

let () =
  Alcotest.run "analysis"
    [ ( "models",
        [ Alcotest.test_case "role models lint clean at error" `Quick
            test_models_error_clean ] );
      ( "codes",
        [ Alcotest.test_case "P4A001 never-valid read" `Quick test_never_valid_read;
          Alcotest.test_case "P4A001 setInvalid-then-read" `Quick
            test_set_invalid_then_read;
          Alcotest.test_case "P4A002 maybe-valid read" `Quick test_maybe_valid_read;
          Alcotest.test_case "guarded read clean" `Quick test_guarded_read_is_clean;
          Alcotest.test_case "P4A003 dead table" `Quick test_dead_table;
          Alcotest.test_case "P4A004 unsat restriction" `Quick test_unsat_restriction;
          Alcotest.test_case "P4A005 unreachable state" `Quick
            test_unreachable_parser_state;
          Alcotest.test_case "P4A006 decided branch" `Quick test_decided_branch;
          Alcotest.test_case "P4A007 unapplied table" `Quick test_unapplied_table;
          Alcotest.test_case "P4A008 unreferenced action" `Quick
            test_unreferenced_action;
          Alcotest.test_case "P4A009 tainted key" `Quick test_tainted_key;
          Alcotest.test_case "P4A009 sanitized near-miss" `Quick
            test_sanitized_key_is_clean;
          Alcotest.test_case "P4A010 tainted egress" `Quick test_tainted_egress;
          Alcotest.test_case "P4A010 sanitized near-miss" `Quick
            test_sanitized_egress_is_clean ] );
      ( "taint",
        [ Alcotest.test_case "selector source" `Quick test_selector_source;
          Alcotest.test_case "tainted branch labels" `Quick
            test_tainted_branch_labels;
          Alcotest.test_case "middleblock summary" `Quick
            test_middleblock_taint_summary;
          Alcotest.test_case "tainted.p4 fixture" `Quick test_fixture_tainted;
          Alcotest.test_case "untainted.p4 near-miss" `Quick
            test_fixture_untainted ] );
      ( "symexec agreement",
        [ Alcotest.test_case "branch labels" `Quick test_branch_labels_match_symexec ] );
      ( "pruning",
        [ Alcotest.test_case "prune goals" `Quick test_prune_goals;
          Alcotest.test_case "no facts" `Quick test_no_facts_prunes_nothing ] );
      ( "plumbing",
        [ Alcotest.test_case "diagnostics" `Quick test_diagnostics_module;
          Alcotest.test_case "dedup across branch arms" `Quick
            test_dedup_across_branch_arms;
          Alcotest.test_case "sort determinism" `Quick test_sort_deterministic;
          Alcotest.test_case "telemetry" `Quick test_telemetry_counters ] ) ]
