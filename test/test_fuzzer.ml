(* Tests for p4-fuzzer: generation validity split, mutation coverage,
   batch independence (the §4.4 invariants), determinism, and the sweep. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module State = Switchv_p4runtime.State
module Validate = Switchv_p4runtime.Validate
module P4info = Switchv_p4ir.P4info
module Fuzzer = Switchv_fuzzer.Fuzzer
module Middleblock = Switchv_sai.Middleblock

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let info = Middleblock.info

let make_fuzzer ?config seed = Fuzzer.create ?config info (Rng.create seed)

let batches fuzzer n = List.init n (fun _ -> Fuzzer.next_batch fuzzer)

(* Pair each batch with a snapshot of the mirror as of the batch's start
   (the mirror object is live and evolves across batches). *)
let batches_with_mirrors fuzzer n =
  List.init n (fun _ ->
      let snapshot = State.copy (Fuzzer.mirror fuzzer) in
      (Fuzzer.next_batch fuzzer, snapshot))

let test_deterministic () =
  let run seed =
    let f = make_fuzzer seed in
    List.concat_map
      (List.map (fun (a : Fuzzer.annotated_update) ->
           Format.asprintf "%a" Request.pp_update a.update))
      (batches f 5)
  in
  check_bool "same seed, same stream" true (run 11 = run 11);
  check_bool "different seeds differ" true (run 11 <> run 12)

let test_unmutated_updates_syntactic () =
  (* Un-mutated updates must be syntactically valid (§4.1: the fuzzer
     "violates no obvious rules in the P4Runtime specification"). Per the
     paper, constraint compliance is deliberately NOT enforced at
     generation time — restricted tables frequently receive entries that
     violate their restrictions, and the oracle judges those like any
     other invalid request. *)
  let f = make_fuzzer 3 in
  let violations = ref 0 in
  List.iter
    (fun batch ->
      List.iter
        (fun (a : Fuzzer.annotated_update) ->
          if a.mutation = None && a.update.op = Request.Insert then begin
            (match Validate.syntactic info a.update.entry with
            | Ok () -> ()
            | Error s ->
                Alcotest.failf "unmutated insert is syntactically invalid (%s): %s"
                  (Format.asprintf "%a" Request.pp_update a.update)
                  (Format.asprintf "%a" Switchv_p4runtime.Status.pp s));
            if Validate.check_entry info a.update.entry |> Result.is_error then
              incr violations
          end)
        batch)
    (batches f 10);
  check_bool "constraint-violating valid-shaped entries do occur (§4.1)" true
    (!violations > 0)

let test_mutated_updates_invalid () =
  (* Every mutated update must actually be invalid: rejected by the
     state-independent check, a dangling reference, a duplicate, or a
     missing delete target — relative to the mirror as of the start of the
     update's own batch (the state the oracle would judge against). *)
  let f = make_fuzzer 7 in
  List.iter
    (fun (batch, mirror) ->
      List.iter
        (fun (a : Fuzzer.annotated_update) ->
          match a.mutation with
          | None -> ()
          | Some m ->
              let e = a.update.entry in
              let state_independent_invalid =
                Validate.check_entry info e |> Result.is_error
              in
              let dangling =
                Validate.check_references info e ~exists:(fun ~table ~key value ->
                    State.exists_value mirror ~table ~key value)
                |> Result.is_error
              in
              let invalid =
                match a.update.op with
                | Request.Insert ->
                    state_independent_invalid || dangling
                    || State.find mirror e <> None (* duplicate *)
                | Request.Delete -> State.find mirror e = None
                | Request.Modify -> state_independent_invalid || dangling
              in
              if not invalid then
                Alcotest.failf "mutation %s produced a valid update: %s" m
                  (Format.asprintf "%a" Request.pp_update a.update))
        batch)
    (batches_with_mirrors f 8)

let test_mutation_diversity () =
  let f = make_fuzzer 5 in
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (a : Fuzzer.annotated_update) ->
         Option.iter (fun m -> Hashtbl.replace seen m ()) a.mutation))
    (batches f 30);
  let distinct = Hashtbl.length seen in
  check_bool
    (Printf.sprintf "at least 12 of %d mutations exercised (got %d)"
       (List.length Fuzzer.mutations) distinct)
    true (distinct >= 12)

let test_batch_no_duplicate_keys () =
  let f = make_fuzzer 9 in
  List.iter
    (fun batch ->
      let keys =
        List.map (fun (a : Fuzzer.annotated_update) -> Entry.match_key a.update.entry) batch
      in
      check_int "no two updates share an entry key" (List.length keys)
        (List.length (List.sort_uniq String.compare keys)))
    (batches f 10)

let test_batch_no_internal_dependencies () =
  (* No update may reference a value inserted or deleted by another update
     of the same batch (§4.4: batches must be order-independent). *)
  let f = make_fuzzer 13 in
  List.iter
    (fun batch ->
      let inserts_provide =
        List.concat_map
          (fun (a : Fuzzer.annotated_update) ->
            if a.update.op = Request.Insert && a.mutation = None then
              List.filter_map
                (fun (fm : Entry.field_match) ->
                  match fm.fm_value with
                  | Entry.M_exact v -> Some (a.update.entry.e_table, fm.fm_field, v)
                  | _ -> None)
                a.update.entry.e_matches
            else [])
          batch
      in
      List.iter
        (fun (a : Fuzzer.annotated_update) ->
          List.iter
            (fun (r : Validate.reference) ->
              let provided_in_batch =
                List.exists
                  (fun (t, k, v) ->
                    t = r.ref_table && k = r.ref_key && Bitvec.equal v r.ref_value)
                  inserts_provide
              in
              if a.mutation = None && provided_in_batch then
                Alcotest.failf "update depends on a same-batch insert: %s"
                  (Format.asprintf "%a" Request.pp_update a.update))
            (Validate.references info a.update.entry))
        batch)
    (batches f 10)

let test_mirror_tracks_valid_inserts () =
  let f = make_fuzzer 21 in
  ignore (batches f 10);
  check_bool "mirror grows" true (State.total (Fuzzer.mirror f) > 0)

let test_capacity_respected () =
  (* The fuzzer never plans more inserts than a table's guaranteed size. *)
  let f = make_fuzzer 17 in
  ignore (batches f 40);
  let mirror = Fuzzer.mirror f in
  List.iter
    (fun (ti : P4info.table) ->
      check_bool
        (Printf.sprintf "%s within size %d" ti.ti_name ti.ti_size)
        true
        (State.count mirror ti.ti_name <= ti.ti_size))
    info.pi_tables

(* --- sweep ------------------------------------------------------------------ *)

let test_sweep_covers_tables () =
  let f = make_fuzzer 2 in
  let sweep = Fuzzer.sweep f in
  let inserted_tables = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (a : Fuzzer.annotated_update) ->
         if a.mutation = None && a.update.op = Request.Insert then
           Hashtbl.replace inserted_tables a.update.entry.e_table ()))
    sweep;
  (* Every table gets at least one valid insert. *)
  List.iter
    (fun (ti : P4info.table) ->
      check_bool (ti.ti_name ^ " seeded by sweep") true
        (Hashtbl.mem inserted_tables ti.ti_name))
    info.pi_tables

let test_sweep_covers_mutations_per_table () =
  let f = make_fuzzer 2 in
  let sweep = Fuzzer.sweep f in
  let pairs = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (a : Fuzzer.annotated_update) ->
         match a.mutation with
         | Some m -> Hashtbl.replace pairs (a.update.entry.e_table, m) ()
         | None -> ()))
    sweep;
  (* The always-applicable mutations hit every table. (invalid_table_id
     rewrites the table name itself, so count its occurrences globally.) *)
  List.iter
    (fun (ti : P4info.table) ->
      check_bool
        (Printf.sprintf "%s x duplicate_match_field in sweep" ti.ti_name)
        true
        (Hashtbl.mem pairs (ti.ti_name, "duplicate_match_field")))
    info.pi_tables;
  let ghost_inserts =
    Hashtbl.fold
      (fun (_, m) () acc -> if m = "invalid_table_id" then acc + 1 else acc)
      pairs 0
  in
  check_bool "invalid_table_id applied across the sweep" true
    (ghost_inserts >= List.length info.pi_tables);
  (* Constraint violations are exercised on the restricted tables. *)
  check_bool "vrf constraint violation swept" true
    (Hashtbl.mem pairs ("vrf_table", "constraint_violation"))

let test_negative_weight_strictly_negative () =
  (* Regression: the "invalid_action_selector_weight" mutation drew
     [-1 * Rng.int rng 2], which yielded weight 0 half the time — a
     possibly-valid update mislabeled as the negative-weight mutation.
     Scan the mutation across many seeds and insist every produced weight
     is strictly negative. *)
  let weights = ref [] in
  for seed = 1 to 20 do
    let f = make_fuzzer seed in
    List.iter
      (List.iter (fun (a : Fuzzer.annotated_update) ->
           match (a.mutation, a.update.entry.e_action) with
           | Some "invalid_action_selector_weight", Entry.Weighted ((_, w) :: _)
             ->
               weights := w :: !weights
           | _ -> ()))
      (batches f 5)
  done;
  check_bool "mutation fired at least once" true (!weights <> []);
  List.iter
    (fun w ->
      if w >= 0 then
        Alcotest.failf "negative-weight mutation produced weight %d" w)
    !weights

let test_sweep_respects_dependency_order () =
  let f = make_fuzzer 2 in
  let sweep = Fuzzer.sweep f in
  (* Scanning valid inserts in order, references must always resolve
     against what was inserted before. *)
  let seen = State.create () in
  List.iter
    (List.iter (fun (a : Fuzzer.annotated_update) ->
         if a.mutation = None && a.update.op = Request.Insert then begin
           (match
              Validate.check_references info a.update.entry
                ~exists:(fun ~table ~key value -> State.exists_value seen ~table ~key value)
            with
           | Ok () -> ()
           | Error _ ->
               Alcotest.failf "sweep insert has forward reference: %s"
                 (Format.asprintf "%a" Entry.pp a.update.entry));
           ignore (State.insert seen a.update.entry)
         end))
    sweep

let () =
  Alcotest.run "fuzzer"
    [ ("generation",
       [ Alcotest.test_case "deterministic" `Quick test_deterministic;
         Alcotest.test_case "unmutated updates syntactic" `Quick
           test_unmutated_updates_syntactic;
         Alcotest.test_case "mutated updates are invalid" `Quick test_mutated_updates_invalid;
         Alcotest.test_case "mutation diversity" `Quick test_mutation_diversity;
         Alcotest.test_case "negative weight strictly negative" `Quick
           test_negative_weight_strictly_negative;
         Alcotest.test_case "mirror tracks inserts" `Quick test_mirror_tracks_valid_inserts;
         Alcotest.test_case "capacity respected" `Quick test_capacity_respected ]);
      ("batching",
       [ Alcotest.test_case "no duplicate keys" `Quick test_batch_no_duplicate_keys;
         Alcotest.test_case "no internal dependencies" `Quick test_batch_no_internal_dependencies ]);
      ("sweep",
       [ Alcotest.test_case "covers all tables" `Quick test_sweep_covers_tables;
         Alcotest.test_case "covers mutations per table" `Quick test_sweep_covers_mutations_per_table;
         Alcotest.test_case "dependency order" `Quick test_sweep_respects_dependency_order ]) ]
