(* Tests for the P4Runtime substrate: entries, state, and validation
   (syntactic validity, constraint compliance, referential integrity) —
   §4 "Valid and Invalid Requests". *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Status = Switchv_p4runtime.Status
module Validate = Switchv_p4runtime.Validate
module Request = Switchv_p4runtime.Request
module P4info = Switchv_p4ir.P4info
module Figure2 = Switchv_sai.Figure2
module Middleblock = Switchv_sai.Middleblock

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let info = Figure2.info
let mb = Middleblock.info

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

let vrf n =
  Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 n)) ]
    (single "no_action" [])

let route ?(vrf = 1) ?(prefix = "10.0.0.0/8") ?(nexthop = 3) () =
  Entry.make ~table:"ipv4_table"
    ~matches:
      [ fm "vrf_id" (Entry.M_exact (bv16 vrf));
        fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string prefix)) ]
    (single "set_nexthop_id" [ bv16 nexthop ])

(* --- entry identity -------------------------------------------------------- *)

let test_match_key_order_insensitive () =
  let a =
    Entry.make ~table:"t"
      ~matches:[ fm "x" (Entry.M_exact (bv16 1)); fm "y" (Entry.M_exact (bv16 2)) ]
      (single "a" [])
  in
  let b =
    Entry.make ~table:"t"
      ~matches:[ fm "y" (Entry.M_exact (bv16 2)); fm "x" (Entry.M_exact (bv16 1)) ]
      (single "b" [])
  in
  check_bool "same key regardless of order and action" true (Entry.equal_key a b);
  check_bool "not fully equal (actions differ)" false (Entry.equal a b)

let test_priority_in_key () =
  let a = Entry.make ~priority:1 ~table:"t" ~matches:[] (single "a" []) in
  let b = Entry.make ~priority:2 ~table:"t" ~matches:[] (single "a" []) in
  check_bool "different priorities are different entries" false (Entry.equal_key a b)

(* --- state ------------------------------------------------------------------ *)

let test_state_insert_delete () =
  let s = State.create () in
  check_bool "insert" true (State.insert s (vrf 1) |> Result.is_ok);
  check_bool "duplicate insert rejected" true
    (match State.insert s (vrf 1) with
    | Error e -> e.Status.code = Status.Already_exists
    | Ok () -> false);
  check_int "count" 1 (State.count s "vrf_table");
  check_bool "delete" true (State.delete s (vrf 1) |> Result.is_ok);
  check_bool "delete again fails" true
    (match State.delete s (vrf 1) with
    | Error e -> e.Status.code = Status.Not_found
    | Ok () -> false)

let test_state_modify () =
  let s = State.create () in
  ignore (State.insert s (route ~nexthop:3 ()));
  check_bool "modify existing" true (State.modify s (route ~nexthop:7 ()) |> Result.is_ok);
  (match State.find s (route ()) with
  | Some e ->
      check_bool "action updated" true
        (match e.e_action with
        | Entry.Single { ai_args = [ v ]; _ } -> Bitvec.to_int_exn v = 7
        | _ -> false)
  | None -> Alcotest.fail "entry vanished");
  check_bool "modify missing fails" true
    (State.modify s (route ~prefix:"11.0.0.0/8" ()) |> Result.is_error)

let test_state_insertion_order () =
  let s = State.create () in
  ignore (State.insert s (route ~prefix:"10.0.0.0/8" ()));
  ignore (State.insert s (route ~prefix:"10.1.0.0/16" ()));
  ignore (State.insert s (route ~prefix:"10.2.0.0/16" ()));
  let prefixes =
    List.map
      (fun (e : Entry.t) ->
        match Entry.find_match e "ipv4_dst" with
        | Some (Entry.M_lpm p) -> Prefix.to_ipv4_string p
        | _ -> "?")
      (State.entries_of s "ipv4_table")
  in
  check_bool "insertion order preserved" true
    (prefixes = [ "10.0.0.0/8"; "10.1.0.0/16"; "10.2.0.0/16" ])

let test_state_references () =
  let s = State.create () in
  ignore (State.insert s (vrf 1));
  ignore (State.insert s (route ~vrf:1 ()));
  check_bool "vrf 1 exists" true (State.exists_value s ~table:"vrf_table" ~key:"vrf_id" (bv16 1));
  check_bool "vrf 2 does not" false
    (State.exists_value s ~table:"vrf_table" ~key:"vrf_id" (bv16 2));
  check_bool "vrf 1 is referenced by the route" true
    (State.is_referenced s info (vrf 1));
  ignore (State.delete s (route ~vrf:1 ()));
  check_bool "unreferenced after route removal" false (State.is_referenced s info (vrf 1))

let test_state_equal_diff () =
  let a = State.create () and b = State.create () in
  ignore (State.insert a (vrf 1));
  ignore (State.insert b (vrf 1));
  check_bool "equal" true (State.equal a b);
  ignore (State.insert b (vrf 2));
  check_bool "not equal" false (State.equal a b);
  check_int "one difference" 1 (List.length (State.diff a b));
  let c = State.copy b in
  check_bool "copy equal" true (State.equal b c);
  ignore (State.delete c (vrf 2));
  check_bool "copy independent" false (State.equal b c)

(* --- syntactic validation (Figure 3 verdicts) -------------------------------- *)

let test_figure3_valid () =
  List.iter
    (fun e ->
      match Validate.check_entry info e with
      | Ok () -> ()
      | Error s -> Alcotest.failf "expected valid, got %s" (Format.asprintf "%a" Status.pp s))
    Figure2.figure3_valid

let test_figure3_invalid () =
  (* v2, v3, i3, i4 are state-independently invalid; i2 dangles. *)
  List.iter
    (fun (label, e) ->
      check_bool (label ^ " rejected") true (Validate.check_entry info e |> Result.is_error))
    [ ("v2", Figure2.v2); ("v3", Figure2.v3); ("i3", Figure2.i3); ("i4", Figure2.i4) ];
  let s = State.create () in
  ignore (State.insert s (vrf 1));
  check_bool "i2 dangles" true
    (Validate.check_references info Figure2.i2
       ~exists:(fun ~table ~key value -> State.exists_value s ~table ~key value)
    |> Result.is_error);
  check_bool "i1 resolves" true
    (Validate.check_references info Figure2.i1
       ~exists:(fun ~table ~key value -> State.exists_value s ~table ~key value)
    |> Result.is_ok)

let test_syntactic_details () =
  let reject label e =
    check_bool (label ^ " rejected") true (Validate.syntactic mb e |> Result.is_error)
  in
  reject "unknown table"
    (Entry.make ~table:"ghost" ~matches:[] (single "no_action" []));
  reject "duplicate match field"
    (Entry.make ~table:"vrf_table"
       ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)); fm "vrf_id" (Entry.M_exact (bv16 2)) ]
       (single "no_action" []));
  reject "missing mandatory exact field"
    (Entry.make ~table:"vrf_table" ~matches:[] (single "no_action" []));
  reject "priority on exact table"
    (Entry.make ~priority:5 ~table:"vrf_table"
       ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
       (single "no_action" []));
  reject "missing priority on ternary table"
    (Entry.make ~table:"acl_ingress_table"
       ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
       (single "drop" []));
  reject "single action on selector table"
    (Entry.make ~table:"wcmp_group_table"
       ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
       (single "set_nexthop_id" [ bv16 1 ]));
  reject "action set on plain table"
    (Entry.make ~table:"vrf_table"
       ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
       (Entry.Weighted [ ({ ai_name = "no_action"; ai_args = [] }, 1) ]));
  reject "zero selector weight"
    (Entry.make ~table:"wcmp_group_table"
       ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
       (Entry.Weighted [ ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 0) ]));
  reject "wildcard ternary must be omitted"
    (Entry.make ~priority:1 ~table:"acl_ingress_table"
       ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.wildcard 1)) ]
       (single "drop" []));
  reject "zero-length lpm must be omitted"
    (Entry.make ~table:"ipv4_table"
       ~matches:
         [ fm "vrf_id" (Entry.M_exact (bv16 1));
           fm "ipv4_dst" (Entry.M_lpm (Prefix.any 32)) ]
       (single "drop" []))

let test_constraint_compliance () =
  let ti = Option.get (P4info.find_table mb "vrf_table") in
  check_bool "vrf 1 compliant" true (Validate.constraint_compliant ti (vrf 1) = Ok true);
  check_bool "vrf 0 violates" true (Validate.constraint_compliant ti (vrf 0) = Ok false)

let test_references_via_action_args () =
  (* set_nexthop_id's parameter refers to nexthop_table. *)
  let e =
    Entry.make ~table:"ipv4_table"
      ~matches:
        [ fm "vrf_id" (Entry.M_exact (bv16 1));
          fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
      (single "set_nexthop_id" [ bv16 9 ])
  in
  let refs = Validate.references mb e in
  check_int "two references (vrf key + nexthop arg)" 2 (List.length refs);
  check_bool "nexthop reference present" true
    (List.exists
       (fun (r : Validate.reference) ->
         r.ref_table = "nexthop_table" && Bitvec.to_int_exn r.ref_value = 9)
       refs)

let test_weighted_references () =
  let e =
    Entry.make ~table:"wcmp_group_table"
      ~matches:[ fm "wcmp_group_id" (Entry.M_exact (bv16 1)) ]
      (Entry.Weighted
         [ ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 4 ] }, 1);
           ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 5 ] }, 2) ])
  in
  check_int "references from every member" 2 (List.length (Validate.references mb e))

let test_request_helpers () =
  let u = Request.insert (vrf 1) in
  check_bool "insert op" true (u.op = Request.Insert);
  check_bool "write_ok all ok" true
    (Request.write_ok { statuses = [ Status.ok; Status.ok ] });
  check_bool "write_ok fails on error" false
    (Request.write_ok
       { statuses = [ Status.ok; Status.make Status.Not_found "x" ] })

let () =
  Alcotest.run "p4runtime"
    [ ("entry",
       [ Alcotest.test_case "match key order" `Quick test_match_key_order_insensitive;
         Alcotest.test_case "priority in key" `Quick test_priority_in_key ]);
      ("state",
       [ Alcotest.test_case "insert/delete" `Quick test_state_insert_delete;
         Alcotest.test_case "modify" `Quick test_state_modify;
         Alcotest.test_case "insertion order" `Quick test_state_insertion_order;
         Alcotest.test_case "references" `Quick test_state_references;
         Alcotest.test_case "equality and diff" `Quick test_state_equal_diff ]);
      ("validate",
       [ Alcotest.test_case "figure 3 valid entries" `Quick test_figure3_valid;
         Alcotest.test_case "figure 3 invalid entries" `Quick test_figure3_invalid;
         Alcotest.test_case "syntactic corner cases" `Quick test_syntactic_details;
         Alcotest.test_case "constraint compliance" `Quick test_constraint_compliance;
         Alcotest.test_case "action-arg references" `Quick test_references_via_action_args;
         Alcotest.test_case "weighted references" `Quick test_weighted_references;
         Alcotest.test_case "request helpers" `Quick test_request_helpers ]) ]
