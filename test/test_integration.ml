(* End-to-end integration tests of SwitchV: soundness on clean switches
   (zero incidents across all role models), completeness per fault family,
   the trivial test suite, and campaign statistics. *)


module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Workload = Switchv_sai.Workload
module Middleblock = Switchv_sai.Middleblock
module Tor = Switchv_sai.Tor
module Wan = Switchv_sai.Wan
module Cerberus = Switchv_sai.Cerberus
module Harness = Switchv_core.Harness
module Report = Switchv_core.Report
module Control_campaign = Switchv_core.Control_campaign
module Data_campaign = Switchv_core.Data_campaign
module Trivial_suite = Switchv_core.Trivial_suite
module Packet = Switchv_packet.Packet

let check_bool = Alcotest.check Alcotest.bool

let quick_control =
  { Control_campaign.default_config with batches = 2; seed = 5 }

let harness_config program =
  let entries = Workload.generate ~seed:8 program Workload.small in
  { (Harness.default_config entries) with control = quick_control }

let fault ?(component = Fault.P4runtime_server) kind =
  Fault.make ~id:"IT" ~component kind "integration test fault"

(* --- soundness: no false positives ------------------------------------------------ *)

let soundness program () =
  let config = harness_config program in
  let report = Harness.validate (fun () -> Stack.create program) config in
  if not (Report.clean report) then
    Alcotest.failf "false positives on a clean switch: %s"
      (Format.asprintf "%a" Report.pp report)

(* Soundness as a property: across random seeds (different workloads and
   fuzz streams), a clean switch never produces incidents. *)
let prop_soundness_random_seeds =
  QCheck.Test.make ~name:"clean switch silent across random seeds" ~count:5
    (QCheck.make QCheck.Gen.(int_bound 0xFFFF) ~print:string_of_int)
    (fun seed ->
      let entries = Workload.generate ~seed Middleblock.program Workload.small in
      let config =
        { (Harness.default_config entries) with
          control = { Control_campaign.default_config with batches = 2; seed } }
      in
      Report.clean (Harness.validate (fun () -> Stack.create Middleblock.program) config))

(* --- completeness: each fault family detected by the right detector ---------------- *)

let detect program f =
  let config = harness_config program in
  Harness.detect (fun () -> Stack.create ~faults:[ f ] program) config

let expect_fuzzer name kind () =
  match detect Middleblock.program (fault kind) with
  | Some Report.Fuzzer -> ()
  | Some d ->
      Alcotest.failf "%s found by %s, expected fuzzer" name
        (Report.detector_to_string d)
  | None -> Alcotest.failf "%s not detected" name

let expect_symbolic name kind () =
  match detect Middleblock.program (fault kind) with
  | Some Report.Symbolic -> ()
  | Some d ->
      Alcotest.failf "%s found by %s, expected symbolic" name
        (Report.detector_to_string d)
  | None -> Alcotest.failf "%s not detected" name

(* --- trivial suite ------------------------------------------------------------------ *)

let test_trivial_clean_passes () =
  let results = Trivial_suite.run_all (Stack.create Middleblock.program) in
  List.iter
    (fun (t, ok) ->
      check_bool (Fault.trivial_test_to_string t ^ " passes on clean switch") true ok)
    results;
  check_bool "run reports no failure" true
    (Trivial_suite.run (Stack.create Middleblock.program) = None)

let test_trivial_clean_all_roles () =
  List.iter
    (fun program ->
      check_bool "clean switch passes" true
        (Trivial_suite.run (Stack.create program) = None))
    [ Tor.program; Wan.program; Cerberus.program ]

let test_trivial_attribution () =
  let first kind = Trivial_suite.run (Stack.create ~faults:[ fault kind ] Middleblock.program) in
  check_bool "p4info fault -> Set P4Info" true
    (first Fault.P4info_push_fails = Some Fault.Set_p4info);
  check_bool "reject fault -> Table entry programming" true
    (first (Fault.Reject_valid_insert "vrf_table") = Some Fault.Table_entry_programming);
  check_bool "read fault -> Read all tables" true
    (first (Fault.Read_drops_table "vrf_table") = Some Fault.Read_all_tables);
  check_bool "punt-loss fault -> Packet-in" true
    (first Fault.Punt_lost = Some Fault.Packet_in);
  check_bool "packet-out fault -> Packet-out" true
    (first Fault.Packet_out_punted_back = Some Fault.Packet_out);
  check_bool "route sync fault -> Packet forwarding" true
    (first (Fault.Syncd_drops_table "ipv4_table") = Some Fault.Packet_forwarding);
  check_bool "subtle fault -> not found" true
    (first (Fault.Modify_keeps_old_args "ipv4_table") = None)

(* --- campaign statistics -------------------------------------------------------------- *)

let test_report_statistics () =
  let config = harness_config Middleblock.program in
  let report = Harness.validate (fun () -> Stack.create Middleblock.program) config in
  (match report.control_stats with
  | Some s ->
      check_bool "fuzzed updates counted" true (s.cs_updates > 100);
      check_bool "both valid and invalid generated" true
        (s.cs_valid_updates > 0 && s.cs_invalid_updates > 0)
  | None -> Alcotest.fail "missing control stats");
  match report.data_stats with
  | Some s ->
      check_bool "entries installed" true (s.ds_entries_installed > 40);
      check_bool "most goals covered" true (s.ds_covered * 2 > s.ds_goals);
      check_bool "packets tested" true (s.ds_packets_tested > 40)
  | None -> Alcotest.fail "missing data stats"

let test_fuzzed_data_pass () =
  (* §7 extension: the fuzzer's surviving entries feed a second symbolic
     pass. Must stay silent on a clean switch, and still detects data-plane
     faults reachable only through fuzzed state. *)
  let config =
    { (harness_config Middleblock.program) with fuzzed_data_pass = true }
  in
  let clean = Harness.validate (fun () -> Stack.create Middleblock.program) config in
  if not (Report.clean clean) then
    Alcotest.failf "fuzzed-entry pass false positives: %s"
      (Format.asprintf "%a" Report.pp clean);
  match
    Harness.detect
      (fun () ->
        Stack.create
          ~faults:[ fault ~component:Fault.Syncd (Fault.Syncd_drops_table "ipv4_table") ]
          Middleblock.program)
      config
  with
  | Some _ -> ()
  | None -> Alcotest.fail "fault undetected with fuzzed-entry pass enabled"

let test_cache_shared_across_campaigns () =
  let entries = Workload.generate ~seed:8 Middleblock.program Workload.small in
  let cache = Switchv_symbolic.Cache.in_memory () in
  let config =
    { (Harness.default_config entries) with control = quick_control; cache = Some cache }
  in
  let r1 = Harness.validate (fun () -> Stack.create Middleblock.program) config in
  let r2 = Harness.validate (fun () -> Stack.create Middleblock.program) config in
  let s1 = Option.get r1.data_stats and s2 = Option.get r2.data_stats in
  check_bool "first run not cached" true
    (s1.ds_cache_hits = 0 && s1.ds_cache_misses > 0);
  check_bool "second run cached" true (s2.ds_cache_hits > 0 && s2.ds_cache_misses = 0)

let () =
  Alcotest.run "integration"
    [ ("soundness",
       [ Alcotest.test_case "middleblock clean" `Slow (soundness Middleblock.program);
         Alcotest.test_case "tor clean" `Slow (soundness Tor.program);
         Alcotest.test_case "wan clean" `Slow (soundness Wan.program);
         Alcotest.test_case "cerberus clean" `Slow (soundness Cerberus.program);
         QCheck_alcotest.to_alcotest prop_soundness_random_seeds ]);
      ("completeness (fuzzer)",
       [ Alcotest.test_case "constraint violation accepted" `Slow
           (expect_fuzzer "accept-constraint" (Fault.Accept_constraint_violation "vrf_table"));
         Alcotest.test_case "dangling reference accepted" `Slow
           (expect_fuzzer "accept-dangling" (Fault.Accept_dangling_reference "ipv4_table"));
         Alcotest.test_case "valid insert rejected" `Slow
           (expect_fuzzer "reject-valid" (Fault.Reject_valid_insert "acl_ingress_table"));
         Alcotest.test_case "read drops table" `Slow
           (expect_fuzzer "read-drops" (Fault.Read_drops_table "acl_ingress_table"));
         Alcotest.test_case "modify keeps old args" `Slow
           (expect_fuzzer "modify-keeps" (Fault.Modify_keeps_old_args "ipv4_table"));
         Alcotest.test_case "batch fails on missing delete" `Slow
           (expect_fuzzer "batch-fails" Fault.Delete_nonexistent_fails_batch) ]);
      ("completeness (symbolic)",
       [ Alcotest.test_case "entries dropped by sync layer" `Slow
           (expect_symbolic "syncd-drops" (Fault.Syncd_drops_table "ipv4_table"));
         Alcotest.test_case "ttl trap" `Slow (expect_symbolic "ttl-trap" Fault.Ttl_trap_always);
         Alcotest.test_case "spurious punt" `Slow
           (expect_symbolic "punt" (Fault.Punt_ether_type 0x88CC));
         Alcotest.test_case "mirror ignored" `Slow
           (expect_symbolic "mirror" Fault.Mirror_ignored);
         Alcotest.test_case "packet-out punted back" `Slow
           (expect_symbolic "pktout" Fault.Packet_out_punted_back) ]);
      ("trivial suite",
       [ Alcotest.test_case "clean passes" `Quick test_trivial_clean_passes;
         Alcotest.test_case "all roles pass" `Quick test_trivial_clean_all_roles;
         Alcotest.test_case "attribution" `Quick test_trivial_attribution ]);
      ("statistics",
       [ Alcotest.test_case "report statistics" `Slow test_report_statistics;
         Alcotest.test_case "fuzzed-entry data pass" `Slow test_fuzzed_data_pass;
         Alcotest.test_case "shared cache" `Slow test_cache_shared_across_campaigns ]) ]
