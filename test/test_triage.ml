(* Tests for lib/triage: ddmin properties (still-fails, 1-minimality,
   determinism, probe budget, telemetry), fingerprint normalization and
   cross-seed stability, and the corpus round trip (serialize -> parse ->
   replay) against a seeded catalogue fault. *)

module Ddmin = Switchv_triage.Ddmin
module Fingerprint = Switchv_triage.Fingerprint
module Jsonp = Switchv_triage.Jsonp
module Repro = Switchv_triage.Repro
module Corpus = Switchv_triage.Corpus
module Telemetry = Switchv_telemetry.Telemetry
module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Packet = Switchv_packet.Packet
module Report = Switchv_core.Report
module Harness = Switchv_core.Harness
module Control_campaign = Switchv_core.Control_campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_int_list = Alcotest.(check (list int))

(* --- ddmin ----------------------------------------------------------------- *)

(* check = "contains every element of the hidden set"; the unique 1-minimal
   failing sublist is the hidden set itself, in input order. *)
let hidden_set_check hidden xs = List.for_all (fun h -> List.mem h xs) hidden

let test_ddmin_hidden_sets () =
  let input = List.init 40 (fun i -> i) in
  List.iter
    (fun hidden ->
      let check = hidden_set_check hidden in
      let result = Ddmin.run ~check input in
      check_int_list
        (Printf.sprintf "finds exactly the hidden set (size %d)"
           (List.length hidden))
        (List.sort compare hidden) (List.sort compare result))
    [ [ 3 ]; [ 3; 7 ]; [ 0; 39 ]; [ 5; 6; 7 ]; [ 1; 13; 21; 34 ]; [] ]

let test_ddmin_still_fails_and_subsequence () =
  let input = List.init 60 (fun i -> i) in
  let check xs = List.mem 17 xs && List.length xs >= 1 in
  let result = Ddmin.run ~check input in
  check_bool "result still fails" true (check result);
  (* result is a subsequence of the input *)
  let rec subseq = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> if x = y then subseq (xs, ys) else subseq (x :: xs, ys)
  in
  check_bool "result is a subsequence of the input" true (subseq (result, input))

let test_ddmin_one_minimality () =
  let input = List.init 30 (fun i -> i) in
  let check xs = List.mem 4 xs && List.mem 25 xs in
  let result = Ddmin.run ~check input in
  check_bool "result fails" true (check result);
  (* 1-minimal: removing any single element makes the failure disappear *)
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) result in
      check_bool
        (Printf.sprintf "removing element %d breaks the reproduction" i)
        false (check without))
    result

let test_ddmin_determinism () =
  let input = List.init 50 (fun i -> i * 3) in
  let check xs = List.mem 21 xs && List.mem 99 xs && List.mem 141 xs in
  let a = Ddmin.run ~check input in
  let b = Ddmin.run ~check input in
  check_int_list "two runs agree" a b

let test_ddmin_edge_cases () =
  let passing_check xs = List.mem 999 xs in
  check_int_list "non-failing input returned unchanged" [ 1; 2; 3 ]
    (Ddmin.run ~check:passing_check [ 1; 2; 3 ]);
  check_int_list "empty failing input minimizes to []" []
    (Ddmin.run ~check:(fun _ -> true) [ 1; 2; 3 ]);
  check_int_list "empty input stays empty" [] (Ddmin.run ~check:(fun _ -> true) [])

let test_ddmin_probe_budget () =
  let input = List.init 80 (fun i -> i) in
  let check xs = List.mem 11 xs && List.mem 66 xs in
  let result, probes = Ddmin.run_stats ~max_probes:5 ~check input in
  check_bool "probes within budget" true (probes <= 5);
  check_bool "budget-exhausted result still fails" true (check result);
  let minimal, _ = Ddmin.run_stats ~check input in
  check_int "unbounded run reaches the minimum" 2 (List.length minimal)

let test_ddmin_telemetry () =
  let tele = Telemetry.get () in
  let before = Telemetry.counter tele "triage.ddmin_probes" in
  let _, probes =
    Ddmin.run_stats ~check:(fun xs -> List.mem 2 xs) [ 0; 1; 2; 3; 4; 5 ]
  in
  check_int "counter advanced by the reported probe count" probes
    (Telemetry.counter tele "triage.ddmin_probes" - before)

(* --- fingerprint ----------------------------------------------------------- *)

let test_normalize () =
  let n = Fingerprint.normalize in
  check_string "decimal run volatile" "port #" (n "port 3");
  check_string "identifier-embedded digits survive" "ipv4_table" (n "ipv4_table");
  check_string "0x literal volatile" "value #" (n "value 0xdeadbeef");
  check_string "long hex with digit volatile" "mac #" (n "mac 0a00270e");
  check_string "idempotent" (n (n "goal entry:ipv4_table:7 (port 2)"))
    (n "goal entry:ipv4_table:7 (port 2)")

let test_fingerprint_prefers_context () =
  let with_table =
    Fingerprint.make ~detector:"p4-fuzzer" ~kind:"status violation"
      ~table:"ipv4_table" ~detail:"volatile 0x123 stuff" ()
  in
  check_string "context fingerprint ignores detail"
    "p4-fuzzer|status violation|t=ipv4_table" with_table;
  let a =
    Fingerprint.make ~detector:"p4-symbolic" ~kind:"behavior divergence"
      ~detail:"switch sent to port 3" ()
  in
  let b =
    Fingerprint.make ~detector:"p4-symbolic" ~kind:"behavior divergence"
      ~detail:"switch sent to port 4" ()
  in
  check_string "volatile detail differences collapse" a b

let test_cluster () =
  let xs = [ ("a", 1); ("b", 2); ("a", 3); ("c", 4); ("a", 5) ] in
  let clusters = Fingerprint.cluster fst xs in
  check_int "three clusters" 3 (List.length clusters);
  let (rep, fp, count) = List.hd clusters in
  check_string "first-seen order" "a" fp;
  check_int "first member is representative" 1 (snd rep);
  check_int "duplicates counted" 3 count

(* Same fault, different campaign seeds: the structured fingerprint of the
   seeded fault's incidents must be identical across runs. *)
let l3_fault entries =
  List.find
    (fun (f : Fault.t) ->
      match f.kind with
      | Fault.Reject_valid_insert t -> String.equal t "l3_admit_table"
      | _ -> false)
    (Catalogue.pins Middleblock.program entries)

let campaign_fingerprints seed =
  let entries = Workload.generate ~seed:3 Middleblock.program Workload.small in
  let fault = l3_fault entries in
  let stack = Stack.create ~faults:[ fault ] Middleblock.program in
  let incidents, _ =
    Control_campaign.run stack
      { Control_campaign.default_config with batches = 1; seed }
  in
  List.map Report.fingerprint incidents

let test_fingerprint_stable_across_seeds () =
  let fp = "p4-fuzzer|status violation|t=l3_admit_table" in
  let run_a = campaign_fingerprints 11 in
  let run_b = campaign_fingerprints 12 in
  check_bool "seed 11 hits the stable fingerprint" true (List.mem fp run_a);
  check_bool "seed 12 hits the stable fingerprint" true (List.mem fp run_b)

let test_duplicates_collapse () =
  let fps = campaign_fingerprints 11 in
  let clusters = Fingerprint.cluster Fun.id fps in
  check_bool "more incidents than clusters" true
    (List.length clusters < List.length fps);
  check_bool "some cluster absorbed duplicates" true
    (List.exists (fun (_, _, count) -> count >= 2) clusters)

(* --- jsonp ----------------------------------------------------------------- *)

let test_jsonp () =
  (match Jsonp.parse {|{"a":[1,2.5,-3],"b":"x\n\"y\"","c":true,"d":null}|} with
  | Error e -> Alcotest.fail e
  | Ok j ->
      check_bool "array" true
        (Option.bind (Jsonp.member "a" j) Jsonp.to_arr
        |> Option.map List.length = Some 3);
      check_bool "escapes" true
        (Option.bind (Jsonp.member "b" j) Jsonp.to_str = Some "x\n\"y\"");
      check_bool "bool" true
        (Option.bind (Jsonp.member "c" j) Jsonp.to_bool = Some true);
      check_bool "null member present" true (Jsonp.member "d" j = Some Jsonp.Null));
  check_bool "trailing garbage rejected" true
    (Result.is_error (Jsonp.parse "{} x"));
  check_bool "unterminated string rejected" true
    (Result.is_error (Jsonp.parse {|{"a":"b|}))

(* --- repro / corpus round trip --------------------------------------------- *)

let sample_entries () =
  Workload.generate ~seed:3 Middleblock.program Workload.small

let sample_control entries =
  let e =
    List.find (fun (e : Entry.t) -> String.equal e.e_table "l3_admit_table") entries
  in
  Repro.Control { cr_seed = 7; cr_prefix = []; cr_batch = [ Request.insert e ] }

let sample_data entries =
  let bytes =
    Packet.to_bytes (Packet.simple_ipv4 ~src:"192.0.2.9" ~dst:"10.0.1.7" ())
  in
  Repro.Data { dr_entries = entries; dr_port = 2; dr_bytes = bytes }

let roundtrip name repro =
  match Jsonp.parse (Repro.to_json repro) with
  | Error e -> Alcotest.fail (name ^ ": " ^ e)
  | Ok j -> (
      match Repro.of_json j with
      | Error e -> Alcotest.fail (name ^ ": " ^ e)
      | Ok back -> check_bool (name ^ " round trip") true (Repro.equal repro back))

let test_repro_roundtrip () =
  let entries = sample_entries () in
  roundtrip "control" (sample_control entries);
  roundtrip "data" (sample_data entries);
  (* wire-byte helpers *)
  let bytes = "\x00\xff\x42az" in
  check_bool "hex helpers invert" true
    (Repro.bytes_of_hex (Repro.hex_of_bytes bytes) = Ok bytes)

let test_corpus_save_load_replay () =
  let entries = sample_entries () in
  let fault = l3_fault entries in
  let record =
    { Corpus.c_program = "sai_middleblock"; c_detector = "p4-fuzzer";
      c_kind = "status violation";
      c_fingerprint = "p4-fuzzer|status violation|t=l3_admit_table";
      c_faults = [ fault.Fault.id ]; c_repro = sample_control entries }
  in
  let data_record =
    { record with
      Corpus.c_detector = "p4-symbolic"; c_kind = "behavior divergence";
      c_repro = sample_data entries }
  in
  let path = Filename.temp_file "switchv_corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Corpus.save ~append:false path [ record ];
      Corpus.save path [ data_record ];
      match Corpus.load path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          check_int "append-only save accumulates" 2 (List.length loaded);
          check_bool "records survive the disk round trip" true
            (List.for_all2
               (fun (a : Corpus.record) (b : Corpus.record) ->
                 String.equal a.c_fingerprint b.c_fingerprint
                 && Repro.equal a.c_repro b.c_repro)
               [ record; data_record ] loaded);
          (* replay against the seeded catalogue fault: the archived
             incident must reproduce *)
          let faulty () = Stack.create ~faults:[ fault ] Middleblock.program in
          let o = Corpus.replay ~mk_stack:faulty (List.hd loaded) in
          check_bool "archived incident reproduces on the faulty stack" true
            o.Corpus.o_reproduced;
          (* and must not reproduce on a clean stack *)
          let clean () = Stack.create Middleblock.program in
          List.iter
            (fun r ->
              let o = Corpus.replay ~mk_stack:clean r in
              check_bool "clean stack replays clean" false o.Corpus.o_reproduced)
            loaded)

let test_corpus_rejects_corrupt_line () =
  let path = Filename.temp_file "switchv_corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"not\": \"a record\"}\n";
      close_out oc;
      check_bool "corrupt corpus fails loudly" true
        (Result.is_error (Corpus.load path)))

(* --- minimization end to end ------------------------------------------------ *)

let test_minimize_shrinks_control_repro () =
  let entries = sample_entries () in
  let fault = l3_fault entries in
  let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
  let incidents, _ =
    Control_campaign.run (mk ())
      { Control_campaign.default_config with batches = 1; seed = 11 }
  in
  let incident =
    List.find
      (fun (i : Report.incident) ->
        String.equal i.kind "status violation" && i.repro <> None)
      incidents
  in
  let repro = Option.get incident.repro in
  check_bool "raw reproducer has slack" true (Repro.size repro > 1);
  let minimized = Harness.minimize_repro mk ~max_probes:256 repro in
  check_bool "minimized is strictly smaller" true
    (Repro.size minimized < Repro.size repro);
  check_bool "minimized still reproduces" true
    (Corpus.replay_repro (mk ()) minimized).Corpus.o_reproduced;
  check_bool "minimized does not fire on a clean stack" false
    (Corpus.replay_repro (Stack.create Middleblock.program) minimized)
      .Corpus.o_reproduced

let () =
  Alcotest.run "triage"
    [ ( "ddmin",
        [ Alcotest.test_case "hidden sets" `Quick test_ddmin_hidden_sets;
          Alcotest.test_case "still fails + subsequence" `Quick
            test_ddmin_still_fails_and_subsequence;
          Alcotest.test_case "1-minimality" `Quick test_ddmin_one_minimality;
          Alcotest.test_case "determinism" `Quick test_ddmin_determinism;
          Alcotest.test_case "edge cases" `Quick test_ddmin_edge_cases;
          Alcotest.test_case "probe budget" `Quick test_ddmin_probe_budget;
          Alcotest.test_case "telemetry" `Quick test_ddmin_telemetry ] );
      ( "fingerprint",
        [ Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "context preferred" `Quick
            test_fingerprint_prefers_context;
          Alcotest.test_case "cluster" `Quick test_cluster;
          Alcotest.test_case "stable across seeds" `Quick
            test_fingerprint_stable_across_seeds;
          Alcotest.test_case "duplicates collapse" `Quick test_duplicates_collapse ] );
      ( "corpus",
        [ Alcotest.test_case "jsonp" `Quick test_jsonp;
          Alcotest.test_case "repro round trip" `Quick test_repro_roundtrip;
          Alcotest.test_case "save/load/replay" `Quick test_corpus_save_load_replay;
          Alcotest.test_case "corrupt line" `Quick test_corpus_rejects_corrupt_line ] );
      ( "minimize",
        [ Alcotest.test_case "shrinks control repro" `Quick
            test_minimize_shrinks_control_repro ] ) ]
