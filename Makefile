# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test bench bench-quick micro examples lint-models lint-json replay-corpus check-parallel check-smt check-obs check-taint check-topo check-greybox check-scale clean

MODELS = middleblock tor wan cerberus figure2

all: build

build:
	dune build @all

# CI entry point: everything (library, CLI, bench, examples, tests) compiles
# with the dev profile's warnings-as-errors, the whole suite passes, and
# every shipped model is lint-clean at severity error.
check:
	dune build @all
	dune runtest
	$(MAKE) lint-models
	$(MAKE) lint-json
	$(MAKE) replay-corpus
	$(MAKE) check-parallel
	$(MAKE) check-smt
	$(MAKE) check-obs
	$(MAKE) check-taint
	$(MAKE) check-topo
	$(MAKE) check-greybox
	$(MAKE) check-scale

# Regression-corpus gate: every archived incident in the golden corpus must
# still reproduce on a stack seeded with the fault it was captured under
# (the corpus is live, not rotted), and none may reproduce on a clean stack
# (no false regressions). Both legs exit non-zero on violation.
replay-corpus:
	dune exec bin/switchv_cli.exe -- replay -m middleblock --fault PINS-019 \
	  --corpus test/fixtures/corpus.jsonl --expect-reproduce
	dune exec bin/switchv_cli.exe -- replay -m middleblock \
	  --corpus test/fixtures/corpus.jsonl

# Parallel-determinism gate: a seeded faulty validation must archive a
# byte-identical regression corpus at --jobs 4 and --jobs 1 (same --shards,
# so the decomposition is fixed and only the scheduling differs), and a
# clean parallel run must exit 0. Incident-bearing runs exit non-zero by
# contract, so those legs are inverted with `!`.
check-parallel:
	rm -f /tmp/swv_par_1.jsonl /tmp/swv_par_4.jsonl
	! dune exec bin/switchv_cli.exe -- validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 1 --save-corpus /tmp/swv_par_1.jsonl >/dev/null
	! dune exec bin/switchv_cli.exe -- validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 4 --save-corpus /tmp/swv_par_4.jsonl >/dev/null
	cmp /tmp/swv_par_1.jsonl /tmp/swv_par_4.jsonl
	dune exec bin/switchv_cli.exe -- validate -m middleblock \
	  --batches 4 --shards 4 --jobs 4 >/dev/null
	rm -f /tmp/swv_par_1.jsonl /tmp/swv_par_4.jsonl

# Incremental-SMT gate, two legs. (1) The property-based differential suite
# at its fixed seed, then a 2-second randomized soak at a fresh seed (the
# seed is printed on failure, so a soak hit is reproducible). (2) A seeded
# faulty validation must archive a byte-identical regression corpus with
# the incremental pipeline on and off — canonical witness models make the
# two solving strategies indistinguishable in every output byte.
check-smt:
	dune exec test/test_smt_diff.exe -- -e
	SWITCHV_QGEN_SEED=$$$$ SWITCHV_QGEN_SOAK_MS=2000 \
	  dune exec test/test_smt_diff.exe -- -e soak
	rm -f /tmp/swv_smt_inc.jsonl /tmp/swv_smt_scr.jsonl
	! dune exec bin/switchv_cli.exe -- validate -m middleblock --fault PINS-019 \
	  --batches 4 --save-corpus /tmp/swv_smt_inc.jsonl >/dev/null
	! dune exec bin/switchv_cli.exe -- validate -m middleblock --fault PINS-019 \
	  --batches 4 --no-incremental --save-corpus /tmp/swv_smt_scr.jsonl >/dev/null
	cmp /tmp/swv_smt_inc.jsonl /tmp/swv_smt_scr.jsonl
	rm -f /tmp/swv_smt_inc.jsonl /tmp/swv_smt_scr.jsonl

# Observability gate, four legs. (1) Live exposition: a faulted sharded
# campaign serves /metrics while running; poll (with switchv top, the
# dependency-free curl) until the live coverage gauge goes nonzero, lint
# the Prometheus exposition format, fetch /snapshot.json and /healthz,
# then interrupt the campaign with SIGINT and verify the --trace file was
# still published atomically (exists, no torn final line). (2) Coverage
# determinism: --coverage-out maps at --jobs 1 and --jobs 4 must be
# byte-identical. (3) Trace stitching: a --jobs trace converts to Chrome
# format with one root and zero orphan spans (trace-export exits non-zero
# otherwise). (4) Overhead budget: the obs_overhead bench artifact must
# show telemetry within its budget on the genpackets/inject hot paths.
OBS_PORT = 19473
SWITCHV = ./_build/default/bin/switchv_cli.exe
check-obs:
	dune build @all
	rm -f /tmp/swv_obs_cov1.txt /tmp/swv_obs_cov4.txt /tmp/swv_obs_trace.jsonl \
	  /tmp/swv_obs_live.jsonl /tmp/swv_obs_chrome.json
	$(SWITCHV) validate -m middleblock --fault PINS-019 --scale 0.2 \
	  --batches 4 --shards 4 --jobs 4 --metrics-port $(OBS_PORT) \
	  --trace /tmp/swv_obs_live.jsonl >/dev/null 2>&1 & \
	pid=$$!; \
	up=0; \
	for i in $$(seq 1 300); do \
	  cov=$$($(SWITCHV) top --port $(OBS_PORT) --fetch /metrics 2>/dev/null \
	    | awk '$$1 == "switchv_edges_covered" && $$2 + 0 > 0 { print $$2 }'); \
	  if [ -n "$$cov" ]; then up=1; break; fi; \
	  sleep 0.2; \
	done; \
	if [ $$up -ne 1 ]; then echo "check-obs: live coverage gauge never went nonzero"; kill $$pid 2>/dev/null; exit 1; fi; \
	echo "check-obs: live switchv_edges_covered=$$cov"; \
	$(SWITCHV) top --port $(OBS_PORT) --lint || { kill $$pid 2>/dev/null; exit 1; }; \
	$(SWITCHV) top --port $(OBS_PORT) --once || { kill $$pid 2>/dev/null; exit 1; }; \
	$(SWITCHV) top --port $(OBS_PORT) --fetch /snapshot.json >/dev/null || { kill $$pid 2>/dev/null; exit 1; }; \
	$(SWITCHV) top --port $(OBS_PORT) --fetch /healthz | grep -q ok || { kill $$pid 2>/dev/null; exit 1; }; \
	kill -INT $$pid 2>/dev/null; \
	wait $$pid; true
	test -s /tmp/swv_obs_live.jsonl
	test -z "$$(tail -c 1 /tmp/swv_obs_live.jsonl)"
	! $(SWITCHV) validate -m middleblock --fault PINS-019 --batches 4 \
	  --shards 4 --jobs 1 --coverage-out /tmp/swv_obs_cov1.txt >/dev/null
	! $(SWITCHV) validate -m middleblock --fault PINS-019 --batches 4 \
	  --shards 4 --jobs 4 --coverage-out /tmp/swv_obs_cov4.txt \
	  --trace /tmp/swv_obs_trace.jsonl >/dev/null
	cmp /tmp/swv_obs_cov1.txt /tmp/swv_obs_cov4.txt
	$(SWITCHV) trace-export --chrome -o /tmp/swv_obs_chrome.json \
	  /tmp/swv_obs_trace.jsonl
	dune exec bench/main.exe -- quick obs_overhead
	rm -f /tmp/swv_obs_cov1.txt /tmp/swv_obs_cov4.txt /tmp/swv_obs_trace.jsonl \
	  /tmp/swv_obs_live.jsonl /tmp/swv_obs_chrome.json

# Static-analysis gate: every built-in role model and every example model
# must carry zero error-severity findings (warnings/info are advisory and
# printed for the record). `switchv lint` exits non-zero on errors.
lint-models:
	for m in $(MODELS); do \
	  dune exec bin/switchv_cli.exe -- lint -m $$m --severity error || exit 1; \
	done
	for f in examples/models/*.p4; do \
	  dune exec bin/switchv_cli.exe -- lint -f $$f --severity error || exit 1; \
	done

# Machine-readable lint gate: --json output must be well-formed JSON with
# the stable field set, deterministic across runs (byte-identical), and
# must carry the taint diagnostics (P4A009/P4A010) on the WCMP role model.
lint-json:
	dune build @all
	rm -f /tmp/swv_lint_a.json /tmp/swv_lint_b.json
	$(SWITCHV) lint -m middleblock --json > /tmp/swv_lint_a.json
	$(SWITCHV) lint -m middleblock --json > /tmp/swv_lint_b.json
	cmp /tmp/swv_lint_a.json /tmp/swv_lint_b.json
	python3 -m json.tool /tmp/swv_lint_a.json >/dev/null
	grep -q '"code":"P4A009"' /tmp/swv_lint_a.json
	grep -q '"code":"P4A010"' /tmp/swv_lint_a.json
	grep -q '"severity"' /tmp/swv_lint_a.json
	grep -q '"loc"' /tmp/swv_lint_a.json
	grep -q '"message"' /tmp/swv_lint_a.json
	rm -f /tmp/swv_lint_a.json /tmp/swv_lint_b.json

# Taint-oracle gate, four legs. (1) Equivalence: on a hash-free model
# (figure2's taint summary is empty) a campaign must archive a
# byte-identical regression corpus with the taint machinery on and off —
# set-valued verdicts and goal classification change nothing when there is
# nothing tainted. (2) Soundness: a clean WCMP model under seeded hashing
# must validate with zero incidents — the set-valued oracle admits every
# legitimate member choice, no false positives, no hash-round enumeration
# on the fast path. (3) Sensitivity: a fault that perturbs the WCMP member
# set (PINS-051) must still be detected — escalation keeps the oracle
# exact. (4) Overhead/effect: the taint bench artifact must show goals
# reclassified and SMT attempts skipped within budget.
check-taint:
	dune build @all
	rm -f /tmp/swv_taint_on.jsonl /tmp/swv_taint_off.jsonl
	! $(SWITCHV) validate -m figure2 --batches 4 \
	  --save-corpus /tmp/swv_taint_on.jsonl >/dev/null
	! $(SWITCHV) validate -m figure2 --batches 4 --no-taint \
	  --save-corpus /tmp/swv_taint_off.jsonl >/dev/null
	cmp /tmp/swv_taint_on.jsonl /tmp/swv_taint_off.jsonl
	$(SWITCHV) validate -m middleblock --batches 4 >/dev/null
	! $(SWITCHV) validate -m middleblock --batches 4 --fault PINS-051 >/dev/null
	dune exec bench/main.exe -- quick taint
	rm -f /tmp/swv_taint_on.jsonl /tmp/swv_taint_off.jsonl

# Fabric gate, three legs. (1) Soundness: an unseeded 4-switch fabric
# campaign must be incident-free on every topology shape — the stack
# fabric and the model fabric agree hop-for-hop and end-to-end on a clean
# switch. (2) Localization: a TTL-trap fault seeded on the middle switch
# of a 3-switch line must be reported, and every hop-attributed
# fingerprint must name sw1 — never an innocent neighbour that merely
# forwarded the perturbed packet. The archived corpus must be
# byte-identical at --jobs 1 and --jobs 4 (same --shards). (3) The fabric
# bench artifact must report 100% localization accuracy over the
# data-plane fault kinds. Incident-bearing runs exit non-zero by
# contract, so those legs are inverted with `!`.
check-topo:
	dune build @all
	for t in line star mesh leaf_spine; do \
	  $(SWITCHV) fabric -m middleblock --topo $$t --switches 4 >/dev/null || exit 1; \
	done
	rm -f /tmp/swv_topo_rep.txt /tmp/swv_topo_1.jsonl /tmp/swv_topo_4.jsonl
	! $(SWITCHV) fabric -m middleblock --topo line --switches 3 \
	  --fault TOPO-001 --fault-switch 1 --shards 4 --jobs 1 \
	  --save-corpus /tmp/swv_topo_1.jsonl > /tmp/swv_topo_rep.txt
	grep -q 'h=sw1' /tmp/swv_topo_rep.txt
	! grep -q 'h=sw0' /tmp/swv_topo_rep.txt
	! grep -q 'h=sw2' /tmp/swv_topo_rep.txt
	! $(SWITCHV) fabric -m middleblock --topo line --switches 3 \
	  --fault TOPO-001 --fault-switch 1 --shards 4 --jobs 4 \
	  --save-corpus /tmp/swv_topo_4.jsonl >/dev/null
	cmp /tmp/swv_topo_1.jsonl /tmp/swv_topo_4.jsonl
	dune exec bench/main.exe -- quick fabric
	rm -f /tmp/swv_topo_rep.txt /tmp/swv_topo_1.jsonl /tmp/swv_topo_4.jsonl

# Greybox gate, three legs. (1) Determinism: with the feedback loop on
# (the default), a seeded faulty validation must archive a byte-identical
# regression corpus at --jobs 1 and --jobs 4 — shard-local novelty maps
# keep coverage-guided scheduling jobs-invariant. (2) Off-switch:
# --no-greybox must reproduce the blind (pre-feedback) pipeline exactly —
# the archived corpus is compared byte-for-byte against a golden corpus
# captured before the feedback loop existed. (3) Effect: the greybox bench
# artifact must show guided probing covering strictly more model edges
# than a budget-matched blind baseline, without losing any catalogued
# fault. Incident-bearing runs exit non-zero by contract, hence `!`.
check-greybox:
	dune build @all
	rm -f /tmp/swv_gb_1.jsonl /tmp/swv_gb_4.jsonl /tmp/swv_gb_off.jsonl
	! $(SWITCHV) validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 1 --save-corpus /tmp/swv_gb_1.jsonl >/dev/null
	! $(SWITCHV) validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 4 --save-corpus /tmp/swv_gb_4.jsonl >/dev/null
	cmp /tmp/swv_gb_1.jsonl /tmp/swv_gb_4.jsonl
	! $(SWITCHV) validate -m middleblock --fault PINS-019 --no-greybox \
	  --batches 4 --shards 4 --jobs 4 --save-corpus /tmp/swv_gb_off.jsonl >/dev/null
	cmp /tmp/swv_gb_off.jsonl test/fixtures/greybox_blind.golden.jsonl
	dune exec bench/main.exe -- quick greybox
	rm -f /tmp/swv_gb_1.jsonl /tmp/swv_gb_4.jsonl /tmp/swv_gb_off.jsonl

# Scale gate, three legs. (1) Equivalence: a seeded faulty validation must
# archive a byte-identical regression corpus with the staged evaluator on
# (the default) and off (--no-compile), at --jobs 1 and --jobs 4 — the
# compiled closures + indexed match structures change throughput, never a
# single output byte. (2) The indexed-match differential suite (property-
# based index-vs-scan, the pinned ternary tie-break, the compiled-vs-
# interpreted soak). (3) Throughput: the quick scale bench artifact must
# show >= 10x packets/sec at the 100k-entry tier (its built-in gate).
check-scale:
	dune build @all
	rm -f /tmp/swv_sc_c1.jsonl /tmp/swv_sc_c4.jsonl /tmp/swv_sc_i1.jsonl /tmp/swv_sc_i4.jsonl
	! $(SWITCHV) validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 1 --save-corpus /tmp/swv_sc_c1.jsonl >/dev/null
	! $(SWITCHV) validate -m middleblock --fault PINS-019 \
	  --batches 4 --shards 4 --jobs 4 --save-corpus /tmp/swv_sc_c4.jsonl >/dev/null
	! $(SWITCHV) validate -m middleblock --fault PINS-019 --no-compile \
	  --batches 4 --shards 4 --jobs 1 --save-corpus /tmp/swv_sc_i1.jsonl >/dev/null
	! $(SWITCHV) validate -m middleblock --fault PINS-019 --no-compile \
	  --batches 4 --shards 4 --jobs 4 --save-corpus /tmp/swv_sc_i4.jsonl >/dev/null
	cmp /tmp/swv_sc_c1.jsonl /tmp/swv_sc_i1.jsonl
	cmp /tmp/swv_sc_c1.jsonl /tmp/swv_sc_c4.jsonl
	cmp /tmp/swv_sc_i1.jsonl /tmp/swv_sc_i4.jsonl
	dune exec test/test_match.exe -- -e
	dune exec bench/main.exe -- quick scale
	rm -f /tmp/swv_sc_c1.jsonl /tmp/swv_sc_c4.jsonl /tmp/swv_sc_i1.jsonl /tmp/swv_sc_i4.jsonl

test:
	dune runtest

test-archive:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- quick

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fuzz_campaign.exe
	dune exec examples/dataplane_diff.exe
	dune exec examples/model_from_source.exe
	dune exec examples/nightly_validation.exe

clean:
	dune clean
