# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test bench bench-quick micro examples clean

all: build

build:
	dune build @all

# CI entry point: everything (library, CLI, bench, examples, tests) compiles
# with the dev profile's warnings-as-errors, and the whole suite passes.
check:
	dune build @all
	dune runtest

test:
	dune runtest

test-archive:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-quick:
	dune exec bench/main.exe -- quick

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/fuzz_campaign.exe
	dune exec examples/dataplane_diff.exe
	dune exec examples/model_from_source.exe
	dune exec examples/nightly_validation.exe

clean:
	dune clean
