(* The SwitchV command-line interface.

   Subcommands:
     validate     — full nightly validation (fuzzer + oracle, symbolic + diff)
     fabric       — multi-switch fabric campaign with hop-localized triage
     replay       — re-run a regression corpus against a (fresh) switch stack
     fuzz         — control-plane campaign only
     genpackets   — p4-symbolic packet generation only
     lint         — static analysis diagnostics (CFG + dataflow + BDD)
     trivial      — the §6.2 trivial integration-test suite
     model        — print a P4 model or its P4Info ("living documentation")
     catalogue    — list the seeded-bug catalogue
     top          — poll a running campaign's /metrics endpoint
     trace-export — stitch a campaign trace / convert to Chrome format

   Switches under test are the simulated stacks; --fault seeds catalogue
   bugs by id so every paper experiment is reproducible from the shell. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Pretty = Switchv_p4ir.Pretty
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Workload = Switchv_sai.Workload
module Harness = Switchv_core.Harness
module Report = Switchv_core.Report
module Fabric_campaign = Switchv_core.Fabric_campaign
module Topo = Switchv_topo.Topo
module Routes = Switchv_topo.Routes
module Control_campaign = Switchv_core.Control_campaign
module Data_campaign = Switchv_core.Data_campaign
module Trivial_suite = Switchv_core.Trivial_suite
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Cache = Switchv_symbolic.Cache
module Telemetry = Switchv_telemetry.Telemetry
module Analysis = Switchv_analysis.Analysis
module Diagnostics = Switchv_analysis.Diagnostics
module Corpus = Switchv_triage.Corpus
module Coverage = Switchv_obs.Coverage
module Prom = Switchv_obs.Prom
module Serve = Switchv_obs.Serve
module Progress = Switchv_obs.Progress
module Obs_trace = Switchv_obs.Trace

open Cmdliner

(* --- shared arguments ---------------------------------------------------- *)

let program_of_name = function
  | "middleblock" -> Ok Switchv_sai.Middleblock.program
  | "tor" -> Ok Switchv_sai.Tor.program
  | "wan" -> Ok Switchv_sai.Wan.program
  | "cerberus" -> Ok Switchv_sai.Cerberus.program
  | "figure2" -> Ok Switchv_sai.Figure2.program
  | other -> Error (Printf.sprintf "unknown model %S" other)

let model_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (program_of_name s) in
  let print fmt (p : Ast.program) = Format.pp_print_string fmt p.p_name in
  Arg.conv (parse, print)

let builtin_model_arg =
  let doc =
    "P4 model / switch role: $(b,middleblock), $(b,tor), $(b,wan), \
     $(b,cerberus), or $(b,figure2)."
  in
  Arg.(
    value
    & opt model_conv Switchv_sai.Middleblock.program
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let model_file_arg =
  let doc =
    "Load the P4 model from a source file in the dialect printed by \
     $(b,switchv model) instead of using a built-in role."
  in
  Arg.(value & opt (some file) None & info [ "f"; "model-file" ] ~docv:"FILE" ~doc)

let load_model builtin = function
  | None -> builtin
  | Some path ->
      let ic = open_in path in
      let source = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let program =
        Switchv_p4ir.P4parser.parse_exn
          ~name:(Filename.remove_extension (Filename.basename path))
          source
      in
      Switchv_p4ir.Typecheck.check_exn program;
      program

let model_arg = Term.(const load_model $ builtin_model_arg $ model_file_arg)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let scale_arg =
  let doc = "Workload scale factor relative to the Inst1 profile (798 entries at 1.0)." in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"F" ~doc)

let faults_arg =
  let doc =
    "Seed the switch with this catalogue fault id (e.g. PINS-042, CERB-003); \
     repeatable."
  in
  Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"ID" ~doc)

let batches_arg =
  Arg.(
    value & opt int 10
    & info [ "batches" ] ~docv:"N" ~doc:"Random fuzz batches after the directed sweep.")

let cache_dir_arg =
  let doc = "Directory for the p4-symbolic packet cache (omit for no caching)." in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let trace_file_arg =
  let doc =
    "Write a JSONL span trace of the run to $(docv) (one event per line; see \
     the Observability section of the README for the schema). The file is \
     staged as $(docv).tmp and renamed on completion — including on Ctrl-C — \
     so a published trace never ends in a torn line."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry trace events mirrored to [file], if given. *)
let with_trace file f =
  match file with
  | None -> f ()
  | Some path -> Obs_trace.with_file_sink (Telemetry.get ()) path f

let workload program scale seed =
  Workload.generate ~seed program (Workload.scaled scale Workload.inst1)

let resolve_faults program entries ids =
  let catalogue =
    Catalogue.pins program entries
    @ Catalogue.cerberus program entries
    @ Catalogue.topo program entries
  in
  List.map
    (fun id ->
      match List.find_opt (fun (f : Fault.t) -> String.equal f.id id) catalogue with
      | Some f -> f
      | None -> failwith (Printf.sprintf "no catalogue fault %S for this model" id))
    ids

(* --- validate ------------------------------------------------------------- *)

let save_corpus_arg =
  let doc =
    "Append every incident's reproducer to the JSONL regression corpus \
     $(docv) (replay it later with $(b,switchv replay))."
  in
  Arg.(value & opt (some string) None & info [ "save-corpus" ] ~docv:"FILE" ~doc)

let minimize_arg =
  let doc =
    "Delta-debug each reported reproducer to a 1-minimal input before \
     reporting/archiving (replays against fresh stacks; slower)."
  in
  Arg.(value & flag & info [ "minimize" ] ~doc)

let jobs_arg =
  let doc =
    "Worker processes for campaign execution. Shard decomposition is fixed \
     by $(b,--shards), so the reported incidents are identical at any jobs \
     count; 1 (the default) forks nothing."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Shard count for both campaigns: control-plane seed-range shards and \
     data-plane coverage-goal slices. Changing it changes what the \
     campaigns fuzz/generate (unlike $(b,--jobs), which never does); \
     useful values are the jobs count you plan to run with."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let no_incremental_arg =
  let doc =
    "Solve every coverage goal in a fresh SMT solver instead of the \
     incremental pipeline (shared clause database, push/pop scopes, \
     assumption deltas). Packets and verdicts are identical either way — \
     this knob only trades solver work, and exists so the equivalence is \
     checkable from the shell (see $(b,make check-smt))."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let no_greybox_arg =
  let doc =
    "Disable the coverage-guided greybox feedback loop: no probe packets \
     after control batches, no coverage-novel corpus, uniform (blind) \
     mutation scheduling, and no concretely-covered SMT goal skipping. \
     Reproduces the pre-feedback fuzzer byte-identically at any \
     $(b,--jobs) (see $(b,make check-greybox))."
  in
  Arg.(value & flag & info [ "no-greybox" ] ~doc)

let no_compile_arg =
  let doc =
    "Disable the staged evaluator: run every model execution through the      tree-walking interpreter with linear-scan table lookups instead of      the compiled closures + indexed match structures. Much slower at      scale; incidents, clusters and corpus are byte-identical either way      (see $(b,make check-scale))."
  in
  Arg.(value & flag & info [ "no-compile" ] ~doc)

let no_taint_arg =
  let doc =
    "Disable the static taint analysis: solve every branch goal (even \
     those whose path condition crosses a hash/selector-tainted branch) \
     and always enumerate hash rounds in the data-plane oracle instead \
     of using set-valued verdicts. On hash-free models the report is \
     byte-identical either way (see $(b,make check-taint))."
  in
  Arg.(value & flag & info [ "no-taint" ] ~doc)

(* Live exposition for a running validate: the three HTTP routes every
   scraper/operator tool needs. Coverage is recomputed per request from
   the ambient registry — counters absorbed from workers are already in
   it, so the gauges move while the campaign runs. *)
let exposition_routes tele program =
  let coverage () = Coverage.of_registry tele program in
  let metrics () =
    let cov = coverage () in
    let gauge name help v =
      { Prom.g_name = name; g_help = help; g_value = float_of_int v }
    in
    ( "text/plain; version=0.0.4",
      Prom.render
        ~gauges:
          [ gauge "switchv_edges_covered"
              "CFG edges executed so far (live coverage numerator)."
              cov.Coverage.covered;
            gauge "switchv_edges_total"
              "CFG edge space of the model under test." cov.Coverage.total ]
        tele )
  in
  let snapshot () =
    let cov = coverage () in
    ( "application/json",
      Telemetry.Json.obj
        [ ("telemetry", Telemetry.snapshot_to_json (Telemetry.snapshot tele));
          ("coverage", Coverage.to_json cov) ]
      ^ "\n" )
  in
  [ ("/metrics", metrics); ("/healthz", fun () -> ("text/plain", "ok\n"));
    ("/snapshot.json", snapshot) ]

let validate_cmd =
  let run program seed scale fault_ids batches cache_dir trace_file corpus_file
      minimize jobs shards no_incremental no_taint no_greybox no_compile
      metrics_port coverage_out progress =
    let entries = workload program scale seed in
    let faults = resolve_faults program entries fault_ids in
    let mk () = Stack.create ~faults ~compile:(not no_compile) program in
    let config =
      { (Harness.default_config entries) with
        control = { Control_campaign.default_config with batches; seed; shards };
        cache = Option.map Cache.on_disk cache_dir;
        triage = Some { Harness.default_triage with minimize };
        jobs;
        data_shards = shards;
        incremental = not no_incremental;
        taint = not no_taint;
        greybox = not no_greybox;
        compile = not no_compile }
    in
    let tele = Telemetry.get () in
    let server =
      Option.map
        (fun port ->
          let srv = Serve.start ~port (exposition_routes tele program) in
          Printf.eprintf "[switchv] serving http://127.0.0.1:%d/metrics\n%!"
            (Serve.port srv);
          srv)
        metrics_port
    in
    let ticker =
      if progress then
        Some
          (Progress.start tele
             ~coverage:(fun () ->
               let c = Coverage.of_registry tele program in
               Some (c.Coverage.covered, c.Coverage.total))
             ())
      else None
    in
    let report =
      Fun.protect
        ~finally:(fun () ->
          Option.iter Progress.stop ticker;
          Option.iter Serve.stop server)
        (fun () -> with_trace trace_file (fun () -> Harness.validate mk config))
    in
    Format.printf "%a@." Report.pp report;
    (match (coverage_out, report.Report.coverage) with
    | Some path, Some cov ->
        Coverage.write_file cov path;
        Printf.printf "coverage map (%d/%d edges) written to %s\n"
          cov.Coverage.covered cov.Coverage.total path
    | Some path, None ->
        Printf.printf "no coverage map collected; %s not written\n" path
    | None, _ -> ());
    (match corpus_file with
    | None -> ()
    | Some path ->
        let fault_ids = List.map (fun (f : Fault.t) -> f.id) faults in
        let records =
          List.filter_map
            (fun (i : Report.incident) ->
              Option.map
                (fun repro ->
                  { Corpus.c_program = report.Report.program_name;
                    c_detector = Report.detector_to_string i.detector;
                    c_kind = i.kind;
                    c_fingerprint = Report.fingerprint i;
                    c_faults = fault_ids;
                    c_repro = repro })
                i.repro)
            (Report.incidents report)
        in
        Corpus.save path records;
        Printf.printf "archived %d reproducer(s) to %s\n" (List.length records) path);
    if Report.clean report then Ok () else Error (false, "incidents reported")
  in
  let metrics_port_arg =
    let doc =
      "Serve live campaign metrics over HTTP on 127.0.0.1:$(docv) while the \
       run is in flight: $(b,/metrics) (Prometheus text format, with live \
       $(b,switchv_edges_covered)/$(b,switchv_edges_total) coverage gauges), \
       $(b,/healthz), and $(b,/snapshot.json). Port 0 picks an ephemeral \
       port (printed to stderr). Poll it with $(b,switchv top)."
    in
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let coverage_out_arg =
    let doc =
      "Write the final coverage map to $(docv) (canonical text form, written \
       atomically; byte-identical at any $(b,--jobs) count)."
    in
    Arg.(value & opt (some string) None & info [ "coverage-out" ] ~docv:"FILE" ~doc)
  in
  let progress_arg =
    let doc =
      "Print a one-line progress heartbeat to stderr every 2s: goals solved, \
       packets injected, incidents, live coverage, and an ETA."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let doc = "Run a full SwitchV validation (control plane + data plane)." in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun p s sc f b c t cf mz j sh ni nt ng nc mp co pr ->
             match run p s sc f b c t cf mz j sh ni nt ng nc mp co pr with
             | Ok () -> Ok ()
             | Error (_, m) -> Error m)
        $ model_arg $ seed_arg $ scale_arg $ faults_arg $ batches_arg $ cache_dir_arg
        $ trace_file_arg $ save_corpus_arg $ minimize_arg $ jobs_arg $ shards_arg
        $ no_incremental_arg $ no_taint_arg $ no_greybox_arg $ no_compile_arg
        $ metrics_port_arg $ coverage_out_arg $ progress_arg))

(* --- replay ---------------------------------------------------------------- *)

let replay_cmd =
  let run program seed scale fault_ids corpus_path expect_reproduce =
    let entries = workload program scale seed in
    let faults = resolve_faults program entries fault_ids in
    let mk () = Stack.create ~faults program in
    match Corpus.load corpus_path with
    | Error e -> Error e
    | Ok records ->
        let reproduced = ref 0 in
        List.iteri
          (fun idx (r : Corpus.record) ->
            if not (String.equal r.c_program program.Ast.p_name) then
              Printf.printf
                "warning: record %d captured on model %s, replaying on %s\n"
                (idx + 1) r.c_program program.Ast.p_name;
            let o = Corpus.replay ~mk_stack:mk r in
            if o.Corpus.o_reproduced then incr reproduced;
            Printf.printf "%3d %-11s %-48s %s\n" (idx + 1)
              (if o.Corpus.o_reproduced then "REPRODUCED" else "clean")
              r.c_fingerprint
              (if o.Corpus.o_reproduced then o.Corpus.o_detail else ""))
          records;
        let total = List.length records in
        Printf.printf "%d/%d archived incident(s) reproduced\n" !reproduced total;
        if expect_reproduce then
          if !reproduced = total then Ok ()
          else
            Error
              (Printf.sprintf "%d archived incident(s) did not reproduce"
                 (total - !reproduced))
        else if !reproduced = 0 then Ok ()
        else Error (Printf.sprintf "%d regression(s) reproduced" !reproduced)
  in
  let corpus_arg =
    let doc = "The JSONL regression corpus to replay." in
    Arg.(
      required & opt (some file) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let expect_reproduce_arg =
    let doc =
      "Invert the exit contract: succeed only if $(i,every) archived \
       incident still reproduces (corpus self-check against a seeded \
       stack), instead of succeeding only when none does."
    in
    Arg.(value & flag & info [ "expect-reproduce" ] ~doc)
  in
  let doc =
    "Replay a regression corpus against a freshly provisioned stack. Exits \
     non-zero when an archived divergence reproduces (or, with \
     $(b,--expect-reproduce), when one fails to)."
  in
  Cmd.v
    (Cmd.info "replay" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun p s sc f c e ->
             match run p s sc f c e with Ok () -> Ok () | Error m -> Error m)
        $ model_arg $ seed_arg $ scale_arg $ faults_arg $ corpus_arg
        $ expect_reproduce_arg))

(* --- fabric ---------------------------------------------------------------- *)

let fabric_cmd =
  let run program shape switches spines seed fault_ids fault_switch budget
      no_packet_out jobs shards minimize no_compile trace_file corpus_file =
    match
      (try Ok (Topo.build ?spines shape switches)
       with Invalid_argument m -> Error m)
    with
    | Error m -> Error m
    | Ok topo ->
        if fault_switch < 0 || fault_switch >= Topo.switches topo then
          Error (Printf.sprintf "--fault-switch %d out of range" fault_switch)
        else begin
          (* Resolve fault ids against the seeded switch's own route plan
             (catalogue constructors that need entries, e.g. table names,
             see what that switch will be programmed with). *)
          let entries = Routes.entries topo program ~switch:fault_switch in
          let catalogue =
            Catalogue.pins program entries
            @ Catalogue.cerberus program entries
            @ Catalogue.topo program entries
          in
          let faults =
            List.map
              (fun id ->
                match
                  List.find_opt
                    (fun (f : Fault.t) -> String.equal f.id id)
                    catalogue
                with
                | Some f -> f
                | None ->
                    failwith
                      (Printf.sprintf "no catalogue fault %S for this model" id))
              fault_ids
          in
          let cfg =
            { (Fabric_campaign.default_config shape switches) with
              Fabric_campaign.spines;
              seed;
              budget;
              shards;
              packet_out = not no_packet_out;
              faults = (if faults = [] then [] else [ (fault_switch, faults) ]);
              minimize;
              compile = not no_compile }
          in
          let tele = Telemetry.get () in
          let incidents, stats =
            with_trace trace_file (fun () -> Fabric_campaign.run ~jobs program cfg)
          in
          let reps, clusters = Fabric_campaign.cluster incidents in
          let report =
            { (Report.empty program.Ast.p_name) with
              Report.fabric_incidents = reps;
              fabric_stats = Some stats;
              clusters = Some clusters;
              telemetry = Some (Telemetry.snapshot tele);
              coverage = Some (Coverage.of_registry tele program) }
          in
          Format.printf "%a@." Report.pp report;
          (match corpus_file with
          | None -> ()
          | Some path ->
              let fault_ids = List.map (fun (f : Fault.t) -> f.id) faults in
              let records =
                List.filter_map
                  (fun (i : Report.incident) ->
                    Option.map
                      (fun repro ->
                        { Corpus.c_program = report.Report.program_name;
                          c_detector = Report.detector_to_string i.detector;
                          c_kind = i.kind;
                          c_fingerprint = Report.fingerprint i;
                          c_faults = fault_ids;
                          c_repro = repro })
                      i.repro)
                  (Report.incidents report)
              in
              Corpus.save path records;
              Printf.printf "archived %d reproducer(s) to %s\n"
                (List.length records) path);
          if Report.clean report then Ok () else Error "incidents reported"
        end
  in
  let shape_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Topo.shape_of_string s) in
    let print fmt s = Format.pp_print_string fmt (Topo.shape_to_string s) in
    Arg.conv (parse, print)
  in
  let topo_arg =
    let doc =
      "Fabric topology: $(b,line), $(b,star), $(b,mesh), or $(b,leaf-spine)."
    in
    Arg.(value & opt shape_conv Switchv_topo.Topo.Line & info [ "topo" ] ~docv:"SHAPE" ~doc)
  in
  let switches_arg =
    Arg.(
      value & opt int 4
      & info [ "switches" ] ~docv:"N" ~doc:"Number of switches in the fabric.")
  in
  let spines_arg =
    let doc = "Spine count for $(b,--topo leaf-spine) (default 2 when N >= 4)." in
    Arg.(value & opt (some int) None & info [ "spines" ] ~docv:"S" ~doc)
  in
  let fault_switch_arg =
    let doc = "Switch index the $(b,--fault) ids are seeded into (default 0)." in
    Arg.(value & opt int 0 & info [ "fault-switch" ] ~docv:"K" ~doc)
  in
  let budget_arg =
    let doc =
      "Hop budget per flow (default 4*N+8); forwarding loops are cut and \
       reported when it runs out."
    in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"H" ~doc)
  in
  let no_packet_out_arg =
    let doc = "Skip the per-switch packet-out injection flows." in
    Arg.(value & flag & info [ "no-packet-out" ] ~doc)
  in
  let doc =
    "Run a multi-switch fabric campaign: wire N simulated stacks into a \
     topology, program routes on every switch, drive end-to-end flows \
     through both the stack fabric and a reference-model fabric, and \
     report divergences localized to the introducing switch (hop \
     fingerprints, per-switch coverage)."
  in
  Cmd.v
    (Cmd.info "fabric" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun p t sw sp s f fs b np j sh mz nc tr cf ->
             match run p t sw sp s f fs b np j sh mz nc tr cf with
             | Ok () -> Ok ()
             | Error m -> Error m)
        $ model_arg $ topo_arg $ switches_arg $ spines_arg $ seed_arg
        $ faults_arg $ fault_switch_arg $ budget_arg $ no_packet_out_arg
        $ jobs_arg $ shards_arg $ minimize_arg $ no_compile_arg
        $ trace_file_arg $ save_corpus_arg))

(* --- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let run program seed fault_ids batches no_greybox no_compile =
    let entries = workload program 0.1 seed in
    let faults = resolve_faults program entries fault_ids in
    let stack = Stack.create ~faults ~compile:(not no_compile) program in
    let incidents, stats =
      Control_campaign.run stack
        { Control_campaign.default_config with
          batches; seed; greybox = not no_greybox }
    in
    Printf.printf "%d batches, %d updates (%d valid / %d invalid) in %.2fs\n"
      stats.cs_batches stats.cs_updates stats.cs_valid_updates stats.cs_invalid_updates
      stats.cs_duration;
    if stats.cs_novel_edges > 0 || stats.cs_corpus_seeds > 0 then
      Printf.printf "greybox: %d novel edges, %d corpus seeds\n"
        stats.cs_novel_edges stats.cs_corpus_seeds;
    List.iter (fun i -> Format.printf "%a@." Report.pp_incident i) incidents;
    Printf.printf "%d incident(s)\n" (List.length incidents)
  in
  let doc = "Run the control-plane fuzzing campaign only (p4-fuzzer + oracle)." in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ model_arg $ seed_arg $ faults_arg $ batches_arg
      $ no_greybox_arg $ no_compile_arg)

(* --- genpackets ---------------------------------------------------------------- *)

let genpackets_cmd =
  let run program seed scale cache_dir verbose trace_tables no_prune
      no_incremental =
    let entries = workload program scale seed in
    let t0 = Telemetry.Clock.now () in
    let encoding = Symexec.encode program entries in
    let goals =
      match trace_tables with
      | [] -> Packetgen.entry_coverage_goals encoding
      | tables -> Packetgen.trace_coverage_goals encoding ~tables
    in
    let goals =
      if no_prune then goals
      else
        let facts = Analysis.facts ~check_restrictions:false program in
        Packetgen.prune_tainted_goals facts.Analysis.f_taint
          (Packetgen.prune_goals facts goals)
    in
    let cache = Option.map Cache.on_disk cache_dir in
    let result =
      Packetgen.generate ?cache ~incremental:(not no_incremental) encoding goals
    in
    Printf.printf "%d entries, %d goals: %d covered, %d uncoverable in %.2fs%s\n"
      (List.length entries) (List.length goals) result.covered result.uncoverable
      (Telemetry.Clock.duration ~since:t0)
      (if result.from_cache then " (cached)" else "");
    if verbose then
      List.iter
        (fun (tp : Packetgen.test_packet) ->
          match tp.tp_bytes with
          | Some bytes ->
              Printf.printf "%-70s port %d, %d bytes\n" tp.tp_goal tp.tp_port
                (String.length bytes)
          | None -> Printf.printf "%-70s UNSAT\n" tp.tp_goal)
        result.packets
  in
  let doc = "Generate test packets with p4-symbolic (entry coverage)." in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print one line per goal.")
  in
  let trace_tables =
    Arg.(
      value
      & opt (list string) []
      & info [ "trace" ] ~docv:"TABLES"
          ~doc:
            "Comma-separated table names: cover the cross-product of their              trace points instead of per-entry coverage (§5's selective              trace coverage).")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Keep coverage goals the static analysis proved uncoverable \
             (dead tables, statically-decided branches) or classified as \
             hash/selector-tainted instead of pruning them before the SMT \
             stage.")
  in
  Cmd.v
    (Cmd.info "genpackets" ~doc)
    Term.(
      const run $ model_arg $ seed_arg $ scale_arg $ cache_dir_arg $ verbose
      $ trace_tables $ no_prune $ no_incremental_arg)

(* --- lint ------------------------------------------------------------------------ *)

let lint_cmd =
  let run program min_severity no_restrictions json =
    let report =
      Analysis.run ~check_restrictions:(not no_restrictions) program
    in
    let all = report.Analysis.r_diagnostics in
    let shown = Diagnostics.filter ~min_severity all in
    if json then begin
      (* Machine-readable rendering with stable field names. The
         diagnostics list is already deterministically sorted and deduped
         by Analysis.run, so the output is byte-stable across runs. *)
      let module Json = Telemetry.Json in
      let diag_to_json (d : Diagnostics.t) =
        Json.obj
          [ ("code", Json.str d.Diagnostics.d_code);
            ( "severity",
              Json.str
                (Diagnostics.severity_to_string d.Diagnostics.d_severity) );
            ("loc", Json.str d.Diagnostics.d_loc);
            ("message", Json.str d.Diagnostics.d_message) ]
      in
      print_string
        (Json.obj
           [ ("program", Json.str program.Ast.p_name);
             ("diagnostics", Json.arr (List.map diag_to_json shown));
             ("errors", Json.int (Diagnostics.count Diagnostics.Error all));
             ("warnings", Json.int (Diagnostics.count Diagnostics.Warning all));
             ("infos", Json.int (Diagnostics.count Diagnostics.Info all)) ]);
      print_newline ()
    end
    else begin
      List.iter (fun d -> Format.printf "%a@." Diagnostics.pp d) shown;
      Format.printf "%s: %a@." program.Ast.p_name Diagnostics.pp_summary all
    end;
    if Diagnostics.has_errors all then Error (false, "lint errors reported")
    else Ok ()
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object instead of text: \
             $(b,{\"program\",\"diagnostics\":[{\"code\",\"severity\",\"loc\",\"message\"}],\
             \"errors\",\"warnings\",\"infos\"}). Diagnostics are \
             deterministically sorted; $(b,--severity) filters the list \
             but the totals always cover every finding.")
  in
  let severity_arg =
    let doc =
      "Only print findings at or above this severity: $(b,error), \
       $(b,warning), or $(b,info). The exit status always reflects \
       error-severity findings, whatever is printed."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("error", Diagnostics.Error); ("warning", Diagnostics.Warning);
               ("info", Diagnostics.Info) ])
          Diagnostics.Info
      & info [ "severity" ] ~docv:"SEVERITY" ~doc)
  in
  let no_restrictions =
    Arg.(
      value & flag
      & info [ "no-restrictions" ]
          ~doc:
            "Skip the BDD entry-restriction satisfiability check (the only \
             non-linear pass).")
  in
  let doc =
    "Statically analyse a P4 model: CFG + dataflow diagnostics (header \
     validity, reachability, constant propagation) and entry-restriction \
     satisfiability. Exits non-zero when error-severity findings exist."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun p sev nr j ->
             match run p sev nr j with Ok () -> Ok () | Error (_, m) -> Error m)
        $ model_arg $ severity_arg $ no_restrictions $ json_arg))

(* --- trivial --------------------------------------------------------------------- *)

let trivial_cmd =
  let run program seed fault_ids =
    let entries = workload program 0.1 seed in
    let faults = resolve_faults program entries fault_ids in
    let results = Trivial_suite.run_all (Stack.create ~faults program) in
    List.iter
      (fun (t, ok) ->
        Printf.printf "%-28s %s\n" (Fault.trivial_test_to_string t)
          (if ok then "PASS" else "FAIL"))
      results
  in
  let doc = "Run the trivial integration-test suite of the paper's Table 2." in
  Cmd.v (Cmd.info "trivial" ~doc) Term.(const run $ model_arg $ seed_arg $ faults_arg)

(* --- model ------------------------------------------------------------------------- *)

let model_cmd =
  let run program p4info =
    if p4info then Format.printf "%a@." P4info.pp (P4info.of_program program)
    else print_endline (Pretty.program_to_string program)
  in
  let doc = "Print a P4 model as P4-16-style source (the living documentation)." in
  let p4info_flag =
    Arg.(value & flag & info [ "p4info" ] ~doc:"Print the control-plane P4Info instead.")
  in
  Cmd.v (Cmd.info "model" ~doc) Term.(const run $ model_arg $ p4info_flag)

(* --- metrics ------------------------------------------------------------------------- *)

let metrics_cmd =
  let run program seed fault_ids =
    let entries = workload program 0.1 seed in
    let faults = resolve_faults program entries fault_ids in
    let metrics =
      Switchv_core.Metrics.collect (fun () -> Stack.create ~faults program) entries
    in
    Format.printf "%a@." Switchv_core.Metrics.pp metrics;
    let routing =
      Switchv_core.Metrics.feature metrics ~name:"routing (feature rollup)"
        ~tables:
          [ "ipv4_table"; "ipv6_table"; "nexthop_table"; "wcmp_group_table";
            "router_interface_table"; "neighbor_table" ]
    in
    Format.printf "%a@." Switchv_core.Metrics.pp [ routing ]
  in
  let doc = "Per-table OKR coverage metrics (§7): fuzz handling and packet behaviour." in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ model_arg $ seed_arg $ faults_arg)

(* --- catalogue ----------------------------------------------------------------------- *)

let catalogue_cmd =
  let run which =
    let entries p = Workload.generate ~seed:1 p Workload.small in
    let faults =
      match which with
      | "pins" ->
          Catalogue.pins Switchv_sai.Middleblock.program
            (entries Switchv_sai.Middleblock.program)
      | "cerberus" ->
          Catalogue.cerberus Switchv_sai.Cerberus.program
            (entries Switchv_sai.Cerberus.program)
      | "topo" ->
          Catalogue.topo Switchv_sai.Middleblock.program
            (entries Switchv_sai.Middleblock.program)
      | other ->
          failwith (Printf.sprintf "unknown catalogue %S (pins|cerberus|topo)" other)
    in
    List.iter (fun f -> Format.printf "%a@." Fault.pp f) faults;
    Printf.printf "%d faults\n" (List.length faults)
  in
  let which =
    Arg.(
      value & pos 0 string "pins"
      & info [] ~docv:"STACK" ~doc:"pins, cerberus, or topo")
  in
  let doc = "List the seeded-bug catalogue (the paper's Table 1 population)." in
  Cmd.v (Cmd.info "catalogue" ~doc) Term.(const run $ which)

(* --- top ----------------------------------------------------------------------------- *)

(* Pull one metric's value out of a Prometheus exposition body. *)
let prom_value body name =
  let lines = String.split_on_char '\n' body in
  List.find_map
    (fun line ->
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = name -> (
          match
            float_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          with
          | Some v -> Some v
          | None -> None)
      | _ -> None)
    lines

let top_cmd =
  let run host port interval once fetch_path lint =
    match fetch_path with
    | Some path -> (
        (* Raw mode: print one resource verbatim — the CI gate's curl. *)
        match Serve.fetch ~host ~port path with
        | Ok body ->
            print_string body;
            Ok ()
        | Error e -> Error (Printf.sprintf "GET %s: %s" path e))
    | None when lint -> (
        match Serve.fetch ~host ~port "/metrics" with
        | Ok body -> (
            match Prom.lint body with
            | [] ->
                Printf.printf "metrics exposition clean (%d bytes)\n"
                  (String.length body);
                Ok ()
            | errs ->
                List.iter (fun e -> Printf.eprintf "lint: %s\n" e) errs;
                Error
                  (Printf.sprintf "%d exposition-format error(s)"
                     (List.length errs)))
        | Error e -> Error (Printf.sprintf "GET /metrics: %s" e))
    | None ->
        let started = Telemetry.Clock.now () in
        let render body =
          let v name = prom_value body name in
          let iv name = Option.map int_of_float (v name) in
          let b = Buffer.create 128 in
          Printf.bprintf b "[switchv top] %6.1fs"
            (Telemetry.Clock.duration ~since:started);
          (match (iv "switchv_edges_covered", iv "switchv_edges_total") with
          | Some c, Some t when t > 0 ->
              Printf.bprintf b " | coverage %d/%d (%.1f%%)" c t
                (100. *. float_of_int c /. float_of_int t)
          | _ -> ());
          (match
             ( iv "switchv_symbolic_goals_covered",
               iv "switchv_symbolic_goals_uncoverable",
               iv "switchv_goals_total" )
           with
          | Some c, Some u, Some total when total > 0 ->
              Printf.bprintf b " | goals %d/%d" (c + u) total
          | _ -> ());
          (match iv "switchv_switch_packets_injected" with
          | Some n -> Printf.bprintf b " | packets %d" n
          | None -> ());
          (match iv "switchv_campaign_incidents" with
          | Some n -> Printf.bprintf b " | incidents %d" n
          | None -> ());
          Buffer.contents b
        in
        let rec loop () =
          match Serve.fetch ~host ~port "/metrics" with
          | Error e ->
              (* A campaign that finished (endpoint gone) is not a failure
                 for a watcher, but a first poll that never connects is. *)
              if Telemetry.Clock.duration ~since:started > 0. && not once then begin
                Printf.printf "[switchv top] endpoint gone (%s)\n" e;
                Ok ()
              end
              else Error (Printf.sprintf "GET /metrics: %s" e)
          | Ok body ->
              print_endline (render body);
              if once then Ok ()
              else begin
                Thread.delay interval;
                loop ()
              end
        in
        loop ()
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Host serving the metrics endpoint.")
  in
  let port_arg =
    Arg.(
      required & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Port of a running $(b,validate --metrics-port).")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between polls.")
  in
  let once_arg =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one status line and exit.")
  in
  let fetch_arg =
    let doc =
      "Print the raw body of $(docv) (e.g. $(b,/metrics), \
       $(b,/snapshot.json)) and exit — a dependency-free curl for scripts \
       and the CI gate."
    in
    Arg.(value & opt (some string) None & info [ "fetch" ] ~docv:"PATH" ~doc)
  in
  let lint_arg =
    let doc =
      "Fetch $(b,/metrics) once and check it against the Prometheus text \
       exposition format; exit non-zero on any violation."
    in
    Arg.(value & flag & info [ "lint" ] ~doc)
  in
  let doc =
    "Watch a running campaign through its $(b,--metrics-port) endpoint: a \
     periodic one-line summary, a raw resource fetch, or an \
     exposition-format lint."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun h p i o f l ->
             match run h p i o f l with Ok () -> Ok () | Error m -> Error m)
        $ host_arg $ port_arg $ interval_arg $ once_arg $ fetch_arg $ lint_arg))

(* --- trace-export --------------------------------------------------------------------- *)

let trace_export_cmd =
  let run input chrome output =
    if not (Sys.file_exists input) then
      Error (Printf.sprintf "no such trace file: %s" input)
    else begin
      let events, skipped = Obs_trace.read_file input in
      let st = Obs_trace.stitch events in
      Printf.eprintf
        "[trace-export] %d span(s), %d root(s), %d orphan(s), %d id block(s)%s\n%!"
        st.Obs_trace.st_spans st.Obs_trace.st_roots st.Obs_trace.st_orphans
        st.Obs_trace.st_blocks
        (if skipped > 0 then Printf.sprintf ", %d unparseable line(s)" skipped
         else "");
      if chrome then begin
        let json = Obs_trace.to_chrome events in
        (match output with
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            output_char oc '\n';
            close_out oc;
            Printf.eprintf "[trace-export] wrote %s\n%!" path
        | None -> print_endline json);
        if st.Obs_trace.st_orphans > 0 then
          Error
            (Printf.sprintf "%d orphan span(s): trace is not a stitched tree"
               st.Obs_trace.st_orphans)
        else Ok ()
      end
      else Ok ()
    end
  in
  let input_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:"A trace written by $(b,--trace) (any subcommand).")
  in
  let chrome_arg =
    let doc =
      "Convert to the Chrome trace-event JSON array (load in \
       chrome://tracing or Perfetto; one lane per process: lane 0 is the \
       campaign parent, lane N is forked worker N)."
    in
    Arg.(value & flag & info [ "chrome" ] ~doc)
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the converted trace here instead of stdout.")
  in
  let doc =
    "Inspect a campaign trace: stitch statistics (spans, roots, orphans, \
     span-id blocks) and optional conversion to Chrome trace-event format."
  in
  Cmd.v
    (Cmd.info "trace-export" ~doc)
    Term.(
      term_result' ~usage:false
        (const (fun i c o ->
             match run i c o with Ok () -> Ok () | Error m -> Error m)
        $ input_arg $ chrome_arg $ output_arg))

let () =
  (* Ctrl-C raises [Sys.Break] so in-flight work unwinds through its
     finalizers: the trace sink truncates + renames, the metrics server
     closes its socket, the pool reaps its workers. *)
  Sys.catch_break true;
  let doc = "SwitchV: automated SDN switch validation with P4 models" in
  let info = Cmd.info "switchv" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ validate_cmd; fabric_cmd; replay_cmd; fuzz_cmd; genpackets_cmd; lint_cmd;
            trivial_cmd; model_cmd; metrics_cmd; catalogue_cmd; top_cmd;
            trace_export_cmd ]))
