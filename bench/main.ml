(* The SwitchV evaluation harness: regenerates every table and figure of
   the paper's evaluation (§6), plus ablation benches for the design
   choices called out in DESIGN.md and a bechamel micro-benchmark suite.

     dune exec bench/main.exe              # everything except micro
     dune exec bench/main.exe -- table1    # a single artifact
     dune exec bench/main.exe -- table1 table2 table3 figure7 ablations micro
     dune exec bench/main.exe -- quick     # reduced scale (CI-sized)

   Absolute numbers differ from the paper (simulated switch + our own SMT
   solver vs. a hardware testbed + Z3); the shapes are the reproduction
   target. Paper values are printed alongside for comparison. *)

module Middleblock = Switchv_sai.Middleblock
module Wan = Switchv_sai.Wan
module Cerberus = Switchv_sai.Cerberus
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Harness = Switchv_core.Harness
module Report = Switchv_core.Report
module Control_campaign = Switchv_core.Control_campaign
module Data_campaign = Switchv_core.Data_campaign
module Fabric_campaign = Switchv_core.Fabric_campaign
module Topo = Switchv_topo.Topo
module Routes = Switchv_topo.Routes
module Trivial_suite = Switchv_core.Trivial_suite
module Cache = Switchv_symbolic.Cache
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Fuzzer = Switchv_fuzzer.Fuzzer
module Oracle = Switchv_oracle.Oracle
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module P4info = Switchv_p4ir.P4info
module Validate = Switchv_p4runtime.Validate
module Request = Switchv_p4runtime.Request
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Status = Switchv_p4runtime.Status
module Rng = Switchv_bitvec.Rng
module Bitvec = Switchv_bitvec.Bitvec
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro

let quick = ref false

let banner title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let now () = Telemetry.Clock.now ()

(* ------------------------------------------------------------------ *)
(* Shared detection machinery for Table 1 / Table 2 / Figure 7         *)
(* ------------------------------------------------------------------ *)

type stack_kind = Pins | Cerb

let program_of = function Pins -> Middleblock.program | Cerb -> Cerberus.program

let workload_of kind =
  let profile =
    match (kind, !quick) with
    | _, true -> Workload.small
    | Pins, false -> Workload.scaled 0.25 Workload.inst1
    | Cerb, false -> Workload.scaled 0.25 Workload.inst2
  in
  Workload.generate ~seed:42 (program_of kind) profile

let catalogue_of kind entries =
  match kind with
  | Pins -> Catalogue.pins (program_of kind) entries
  | Cerb -> Catalogue.cerberus (program_of kind) entries

type detection = {
  fault : Fault.t;
  found_by : Report.detector option;
  trivial : Fault.trivial_test option;   (* first trivial test that fails *)
}

(* Memoised per stack kind so table1/table2/figure7 share one pass. *)
let detections_memo : (stack_kind, detection list) Hashtbl.t = Hashtbl.create 2

let detections kind =
  match Hashtbl.find_opt detections_memo kind with
  | Some d -> d
  | None ->
      let program = program_of kind in
      let entries = workload_of kind in
      let faults = catalogue_of kind entries in
      let cache = Cache.in_memory () in
      let control_config =
        { Control_campaign.default_config with
          batches = (if !quick then 2 else 4);
          seed = 99 }
      in
      let harness_config =
        { (Harness.default_config entries) with
          control = control_config;
          cache = Some cache }
      in
      let total = List.length faults in
      let t0 = now () in
      let results =
        List.mapi
          (fun i fault ->
            if i mod 20 = 0 then
              Printf.printf "  ... campaign %d/%d (%.0fs elapsed)\n%!" i total
                (now () -. t0);
            let mk () = Stack.create ~faults:[ fault ] program in
            let found_by = Harness.detect mk harness_config in
            let trivial = Trivial_suite.run (mk ()) in
            { fault; found_by; trivial })
          faults
      in
      Printf.printf "  %d campaigns in %.1fs\n%!" total (now () -. t0);
      Hashtbl.replace detections_memo kind results;
      results

(* ------------------------------------------------------------------ *)
(* Table 1: bugs found by component                                    *)
(* ------------------------------------------------------------------ *)

let pins_components =
  [ Fault.P4runtime_server; Fault.Gnmi; Fault.Orchestration_agent; Fault.Syncd;
    Fault.Switch_linux; Fault.Hardware; Fault.P4_toolchain; Fault.Input_p4_program ]

let cerb_components =
  [ Fault.Vendor_software; Fault.Hardware; Fault.Input_p4_program;
    Fault.Bmv2_simulator ]

(* Paper's Table 1 values: (component, total, fuzzer, symbolic). *)
let paper_table1_pins =
  [ ("P4Runtime Server", 47, 11, 36); ("gNMI", 2, 0, 2);
    ("Orchestration Agent", 24, 12, 11); ("SyncD Binary", 23, 10, 13);
    ("Switch Linux", 9, 0, 9); ("Hardware", 1, 1, 0); ("P4 Toolchain", 2, 1, 1);
    ("Input P4 Program", 15, 2, 13) ]

let paper_table1_cerb =
  [ ("Switch software", 24, 14, 10); ("Hardware", 1, 0, 1);
    ("Input P4 Program", 3, 0, 3); ("BMv2 P4 Simulator", 4, 4, 0) ]

let print_table1_for kind title components paper =
  let results = detections kind in
  Printf.printf "\n%s\n" title;
  Printf.printf "%-22s | %17s | %23s\n" "" "measured" "paper";
  Printf.printf "%-22s | %5s %6s %4s | %5s %6s %4s %6s\n" "Component" "found"
    "fuzzer" "symb" "bugs" "fuzzer" "symb" "seeded";
  Printf.printf "%s\n" (String.make 78 '-');
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun component ->
      let of_component =
        List.filter (fun d -> d.fault.Fault.component = component) results
      in
      let seeded = List.length of_component in
      let fuzzer =
        List.length
          (List.filter (fun d -> d.found_by = Some Report.Fuzzer) of_component)
      in
      let symbolic =
        List.length
          (List.filter (fun d -> d.found_by = Some Report.Symbolic) of_component)
      in
      let name = Fault.component_to_string component in
      let pb, pf, ps =
        match List.find_opt (fun (n, _, _, _) -> n = name) paper with
        | Some (_, b, f, s) -> (b, f, s)
        | None -> (0, 0, 0)
      in
      let tf, tu, ts, tt = !totals in
      totals := (tf + fuzzer + symbolic, tu + fuzzer, ts + symbolic, tt + seeded);
      Printf.printf "%-22s | %5d %6d %4d | %5d %6d %4d %6d\n" name
        (fuzzer + symbolic) fuzzer symbolic pb pf ps seeded)
    components;
  let found, fz, sy, seeded = !totals in
  Printf.printf "%s\n" (String.make 78 '-');
  let paper_total, paper_fz, paper_sy =
    List.fold_left (fun (a, b, c) (_, x, y, z) -> (a + x, b + y, c + z)) (0, 0, 0) paper
  in
  Printf.printf "%-22s | %5d %6d %4d | %5d %6d %4d %6d\n" "Total" found fz sy
    paper_total paper_fz paper_sy seeded;
  let missed = List.filter (fun d -> d.found_by = None) results in
  if missed <> [] then begin
    Printf.printf "\nundetected seeded faults (%d):\n" (List.length missed);
    List.iter (fun d -> Format.printf "  %a@." Fault.pp d.fault) missed
  end

let table1 () =
  banner "Table 1: Bugs found by SwitchV by component";
  print_table1_for Pins "PINS" pins_components paper_table1_pins;
  print_table1_for Cerb "Cerberus" cerb_components paper_table1_cerb;
  print_endline
    "\nNote: the paper's PINS component column sums to 123 while its detector\n\
     columns sum to 122 (47+2+24+23+9+1+2+15 = 123 vs 37+85 = 122); our\n\
     catalogue follows the detector-consistent total of 122."

(* ------------------------------------------------------------------ *)
(* Table 2: which bugs the trivial test suite finds                    *)
(* ------------------------------------------------------------------ *)

let paper_table2 =
  [ ("Set P4Info", 22, 0); ("Table entry programming", 15, 0);
    ("Read all tables", 10, 2); ("Packet-in", 12, 4); ("Packet-out", 4, 1);
    ("Packet forwarding", 0, 0); ("Not found by any test above", 60, 25) ]

let table2 () =
  banner "Table 2: Bugs findable by the trivial test suite";
  let count kind =
    let results = detections kind in
    (* Restrict to bugs SwitchV found, as the paper does. *)
    let found = List.filter (fun d -> d.found_by <> None) results in
    let by_test test =
      List.length (List.filter (fun d -> d.trivial = Some test) found)
    in
    let none = List.length (List.filter (fun d -> d.trivial = None) found) in
    (List.map by_test Fault.trivial_tests @ [ none ], List.length found)
  in
  let pins_counts, pins_total = count Pins in
  let cerb_counts, cerb_total = count Cerb in
  Printf.printf "%-30s | %13s | %13s | %13s\n" "Test" "PINS" "Cerberus" "paper (P/C)";
  Printf.printf "%s\n" (String.make 80 '-');
  let labels =
    List.map Fault.trivial_test_to_string Fault.trivial_tests
    @ [ "Not found by any test above" ]
  in
  List.iteri
    (fun i label ->
      let p = List.nth pins_counts i and c = List.nth cerb_counts i in
      let paper_p, paper_c =
        match List.find_opt (fun (n, _, _) -> n = label) paper_table2 with
        | Some (_, x, y) -> (x, y)
        | None -> (0, 0)
      in
      Printf.printf "%-30s | %4d (%3.0f%%)   | %4d (%3.0f%%)   | %3d%% / %3d%%\n" label p
        (100. *. float_of_int p /. float_of_int (max 1 pins_total))
        c
        (100. *. float_of_int c /. float_of_int (max 1 cerb_total))
        (100 * paper_p / 122) (100 * paper_c / 32))
    labels;
  Printf.printf "(over %d PINS and %d Cerberus bugs found by SwitchV)\n" pins_total
    cerb_total

(* ------------------------------------------------------------------ *)
(* Table 3: performance of p4-symbolic and p4-fuzzer                   *)
(* ------------------------------------------------------------------ *)

let table3_symbolic name program profile =
  let entries = Workload.generate ~seed:5 program profile in
  let stack () =
    let s = Stack.create program in
    ignore (Stack.push_p4info s);
    s
  in
  let cache = Cache.in_memory () in
  let run c =
    let config =
      { (Data_campaign.default_config entries) with
        cache = c;
        max_incidents = 1000;
        extra_goals = Data_campaign.exploratory_goals }
    in
    Data_campaign.run ~push_p4info:false (stack ()) config
  in
  let incidents_cold, stats_cold = run (Some cache) in
  let incidents_warm, stats_warm = run (Some cache) in
  assert (incidents_cold = [] && incidents_warm = []);
  (name, List.length entries, stats_cold, stats_warm)

let table3 () =
  banner "Table 3: time to run p4-symbolic and p4-fuzzer";
  let scale = if !quick then 0.1 else 1.0 in
  let rows =
    [ table3_symbolic "Inst1 (middleblock)" Middleblock.program
        (Workload.scaled scale Workload.inst1);
      table3_symbolic "Inst2 (WAN)" Wan.program (Workload.scaled scale Workload.inst2) ]
  in
  Printf.printf "%-20s %8s %20s %9s   %s\n" "P4 Prog." "Entries" "Generation (w/c)"
    "Testing" "paper: gen (w/c) / testing";
  Printf.printf "%s\n" (String.make 92 '-');
  List.iteri
    (fun i (name, entries, (cold : Report.data_stats), (warm : Report.data_stats)) ->
      let paper = if i = 0 then "413s (14s) / 58s" else "1099s (6s) / 64s" in
      Printf.printf "%-20s %8d %10.2fs (%.2fs) %8.2fs   %s\n" name entries
        cold.ds_generation_time warm.ds_generation_time cold.ds_testing_time paper;
      Printf.printf "%-20s %8s   goals %d, covered %d, uncoverable %d%s\n" "" ""
        cold.ds_goals cold.ds_covered cold.ds_uncoverable
        (if warm.ds_cache_hits > 0 then "  [second run served from cache]" else ""))
    rows;
  (* Fuzzer throughput. *)
  Printf.printf "\n%-20s %15s %10s   %s\n" "P4 Prog." "Fuzzed Entries" "Entries/s"
    "paper";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun (name, program) ->
      let stack = Stack.create program in
      ignore (Stack.push_p4info stack);
      let fuzzer = Fuzzer.create (Stack.info stack) (Rng.create 77) in
      let oracle = Oracle.create (Stack.info stack) in
      let batches = if !quick then 20 else 1000 in
      let n = ref 0 in
      let t0 = now () in
      for _ = 1 to batches do
        let annotated = Fuzzer.next_batch fuzzer in
        let updates = List.map (fun (a : Fuzzer.annotated_update) -> a.update) annotated in
        n := !n + List.length updates;
        let resp = Stack.write stack { Request.updates } in
        let read_back = Stack.read stack in
        ignore (Oracle.judge_batch oracle updates resp ~read_back)
      done;
      let dt = now () -. t0 in
      Printf.printf "%-20s %15d %10.0f   ~50000 at ~97/s\n" name !n
        (float_of_int !n /. dt))
    [ ("Inst1 (middleblock)", Middleblock.program); ("Inst2 (WAN)", Wan.program) ]

(* ------------------------------------------------------------------ *)
(* Figure 7: days to bug resolution                                    *)
(* ------------------------------------------------------------------ *)

let figure7 () =
  banner "Figure 7: days to resolution of PINS bugs found by SwitchV";
  let results = detections Pins in
  let found = List.filter (fun d -> d.found_by <> None) results in
  let buckets =
    [ ("0-3", 0, 3); ("3-6", 3, 6); ("6-10", 6, 10); ("10-15", 10, 15);
      ("15-20", 15, 20); ("20-25", 20, 25); ("25-30", 25, 30); ("30-60", 30, 60);
      ("60-90", 60, 90); ("90-120", 90, 120); ("120-150", 120, 150);
      (">=150", 150, max_int) ]
  in
  Printf.printf "%-8s | %-42s | total symb fuzz\n" "days" "";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun (label, lo, hi) ->
      let in_bucket detector =
        List.length
          (List.filter
             (fun d ->
               (match detector with None -> true | Some det -> d.found_by = Some det)
               &&
               match d.fault.Fault.days_to_resolution with
               | Some days -> days >= lo && days < hi
               | None -> false)
             found)
      in
      let total = in_bucket None in
      let symb = in_bucket (Some Report.Symbolic) in
      let fuzz = in_bucket (Some Report.Fuzzer) in
      Printf.printf "%-8s | %-42s | %5d %4d %4d\n" label
        (String.make (min 42 total) '#') total symb fuzz)
    buckets;
  let unresolved =
    List.length
      (List.filter (fun d -> d.fault.Fault.days_to_resolution = None) found)
  in
  Printf.printf "unresolved: %d (paper: 9)\n" unresolved;
  let resolved_days =
    List.filter_map (fun d -> d.fault.Fault.days_to_resolution) found
  in
  let within n =
    100
    * List.length (List.filter (fun d -> d <= n) resolved_days)
    / max 1 (List.length found)
  in
  Printf.printf
    "fixed within 14 days: %d%% (paper: majority); within 5 days: %d%% (paper: 33%%)\n"
    (within 14) (within 5)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_traces () =
  banner "Ablation: guarded single-pass encoding vs. per-trace enumeration (§5)";
  Printf.printf
    "Trace enumeration cost is the product of per-table branch counts; the\n\
     guarded encoding is linear in the number of entries (paper: three\n\
     100-entry tables => 10^6 traces).\n\n";
  Printf.printf "%8s | %14s | %12s | %10s\n" "entries" "traces (enum.)"
    "trace points" "solve time";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun factor ->
      let profile = Workload.scaled factor Workload.inst1 in
      let entries = Workload.generate ~seed:5 Middleblock.program profile in
      let t0 = now () in
      let enc = Symexec.encode Middleblock.program entries in
      let goals = Packetgen.entry_coverage_goals enc in
      let result = Packetgen.generate enc goals in
      let dt = now () -. t0 in
      ignore result;
      (* #traces = product over tables of (entries + default) *)
      let per_table = Hashtbl.create 16 in
      List.iter
        (fun (e : Entry.t) ->
          Hashtbl.replace per_table e.e_table
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_table e.e_table)))
        entries;
      let log_traces =
        Hashtbl.fold (fun _ n acc -> acc +. log10 (float_of_int (n + 1))) per_table 0.
      in
      Printf.printf "%8d | %11s    | %12d | %8.2fs\n" (List.length entries)
        (Printf.sprintf "10^%.1f" log_traces)
        (List.length enc.enc_trace) dt)
    (if !quick then [ 0.05; 0.1 ] else [ 0.1; 0.25; 0.5; 1.0 ])

let ablation_mutations () =
  banner "Ablation: mutation-based vs. naive random invalid requests (§4.2)";
  Printf.printf
    "Depth = how far into the switch's validation pipeline a request gets\n\
     (0 = unknown table ... 4 = state-dependent checks, 5 = actually valid).\n\
     Naive random requests die at the first checks (the paper's motivation\n\
     for curated mutations).\n\n";
  let info = Middleblock.info in
  let depth_of (e : Entry.t) state =
    match Validate.syntactic info e with
    | Error s ->
        let m = s.Status.message in
        let has sub =
          let ls = String.length sub and lm = String.length m in
          let rec go i = i + ls <= lm && (String.sub m i ls = sub || go (i + 1)) in
          go 0
        in
        if has "unknown table" then 0
        else if has "no match field" || has "does not permit action" then 1
        else 2
    | Ok () -> (
        match Validate.check_entry info e with
        | Error _ -> 3 (* constraint violation *)
        | Ok () -> (
            match
              Validate.check_references info e ~exists:(fun ~table ~key value ->
                  State.exists_value state ~table ~key value)
            with
            | Error _ -> 4
            | Ok () -> 5))
  in
  let state = State.create () in
  List.iter
    (fun e -> ignore (State.insert state e))
    (Workload.generate ~seed:6 Middleblock.program Workload.small);
  let n = if !quick then 300 else 2000 in
  let histogram label gen =
    let counts = Array.make 6 0 in
    let rng = Rng.create 31 in
    let produced = ref 0 in
    while !produced < n do
      match gen rng with
      | Some e ->
          incr produced;
          let d = depth_of e state in
          counts.(d) <- counts.(d) + 1
      | None -> ()
    done;
    Printf.printf "%-18s" label;
    Array.iteri
      (fun i c ->
        Printf.printf "  d%d: %4.1f%%" i (100. *. float_of_int c /. float_of_int n))
      counts;
    print_newline ()
  in
  let tables = List.map (fun (ti : P4info.table) -> ti.ti_name) info.pi_tables in
  let naive rng =
    let table =
      if Rng.int rng 2 = 0 then Printf.sprintf "table_%d" (Rng.int rng 100)
      else Rng.choose rng tables
    in
    let matches =
      List.init (Rng.int rng 3) (fun i ->
          { Entry.fm_field = Printf.sprintf "field_%d" i;
            fm_value = Entry.M_exact (Rng.bitvec rng (1 + Rng.int rng 64)) })
    in
    Some
      (Entry.make ~priority:(Rng.int rng 3) ~table ~matches
         (Entry.Single
            { ai_name = Printf.sprintf "action_%d" (Rng.int rng 100);
              ai_args = [ Rng.bitvec rng 16 ] }))
  in
  let fuzzer = Fuzzer.create info (Rng.create 8) in
  for _ = 1 to 10 do ignore (Fuzzer.next_batch fuzzer) done;
  let pending : Entry.t list ref = ref [] in
  let mutation _rng =
    (match !pending with
    | [] ->
        pending :=
          List.filter_map
            (fun (a : Fuzzer.annotated_update) ->
              if a.mutation <> None then Some a.update.entry else None)
            (Fuzzer.next_batch fuzzer)
    | _ -> ());
    match !pending with
    | e :: rest ->
        pending := rest;
        Some e
    | [] -> None
  in
  histogram "naive random" naive;
  histogram "mutation-based" mutation

let ablation_batching () =
  banner "Ablation: @refers_to-aware batching vs. naive batching (§4.4)";
  Printf.printf
    "Naive batches contain internal dependencies, so a correct switch's\n\
     order-dependent outcomes look like violations to the oracle: false\n\
     positives on a bug-free switch.\n\n";
  let run respect =
    let stack = Stack.create Middleblock.program in
    let config =
      { Control_campaign.default_config with
        batches = (if !quick then 10 else 40);
        fuzzer_config = { Fuzzer.default_config with respect_dependencies = respect };
        max_incidents = 10000;
        seed = 5 }
    in
    let incidents, stats = Control_campaign.run stack config in
    (List.length incidents, stats.cs_updates)
  in
  let dep_incidents, dep_updates = run true in
  let naive_incidents, naive_updates = run false in
  Printf.printf "%-28s %10s %10s\n" "" "incidents" "updates";
  Printf.printf
    "dependency-aware batching   %10d %10d  (must be 0: no false positives)\n"
    dep_incidents dep_updates;
  Printf.printf
    "naive batching              %10d %10d  (spurious reports on a clean switch)\n"
    naive_incidents naive_updates

let ablation_pruning () =
  banner "Ablation: analysis-driven goal pruning (lib/analysis)";
  Printf.printf
    "A statically-dead debug table is appended to the middleblock pipeline\n\
     (guarded by a metadata flag that is provably always zero), with two\n\
     installed entries. With pruning on, its coverage goals never reach\n\
     the SMT solver; the divergence verdict must be identical either way\n\
     because every pruned goal is provably uncoverable.\n\n";
  let module A = Switchv_p4ir.Ast in
  let program =
    let base = Middleblock.program in
    let debug_table =
      { A.t_name = "debug_table"; t_id = 999;
        t_keys =
          [ { A.k_name = "level"; k_expr = A.E_field (A.meta "debug_level");
              k_kind = A.Exact; k_refers_to = None } ];
        t_actions = [ "no_action" ]; t_default_action = ("no_action", []);
        t_size = 16; t_entry_restriction = None; t_selector = false }
    in
    { base with
      A.p_name = base.A.p_name ^ "_debug";
      p_metadata = base.A.p_metadata @ [ ("debug_level", 8) ];
      p_tables = base.A.p_tables @ [ debug_table ];
      p_ingress =
        A.C_seq
          ( base.A.p_ingress,
            A.C_if
              ( A.B_eq
                  ( A.E_field (A.meta "debug_level"),
                    A.E_const (Bitvec.of_int ~width:8 2) ),
                A.C_table "debug_table", A.C_nop ) ) }
  in
  Switchv_p4ir.Typecheck.check_exn program;
  let debug_entry level =
    Entry.make ~table:"debug_table"
      ~matches:
        [ { Entry.fm_field = "level";
            fm_value = Entry.M_exact (Bitvec.of_int ~width:8 level) } ]
      (Entry.Single { ai_name = "no_action"; ai_args = [] })
  in
  let entries =
    Workload.generate ~seed:7 program Workload.small
    @ [ debug_entry 1; debug_entry 2 ]
  in
  let tm = Telemetry.get () in
  let run prune =
    let stack = Stack.create program in
    let before = Telemetry.counter tm "analysis.goals_pruned" in
    let incidents, stats =
      Data_campaign.run stack
        { (Data_campaign.default_config entries) with
          prune_dead_goals = prune; test_packet_io = false }
    in
    (incidents, stats, Telemetry.counter tm "analysis.goals_pruned" - before)
  in
  let inc_on, stats_on, pruned_on = run true in
  let inc_off, stats_off, pruned_off = run false in
  Printf.printf "%-16s %8s %8s %12s %10s %8s\n" "" "goals" "pruned"
    "uncoverable" "incidents" "gen(s)";
  let row label (stats : Report.data_stats) incidents pruned =
    Printf.printf "%-16s %8d %8d %12d %10d %8.2f\n" label stats.ds_goals pruned
      stats.ds_uncoverable (List.length incidents) stats.ds_generation_time
  in
  row "pruning on" stats_on inc_on pruned_on;
  row "pruning off" stats_off inc_off pruned_off;
  Printf.printf
    "goals_pruned > 0 with pruning on: %b; identical incidents: %b\n"
    (pruned_on > 0) (inc_on = inc_off)

let ablations () =
  ablation_traces ();
  ablation_mutations ();
  ablation_batching ();
  ablation_pruning ()

(* ------------------------------------------------------------------ *)
(* SMT: incremental solving vs. per-goal scratch solvers               *)
(* ------------------------------------------------------------------ *)

let smt_incremental_bench () =
  banner "SMT: incremental packet generation vs. per-goal scratch solving";
  Printf.printf
    "Each fixture campaign's coverage goals are solved twice: once with the\n\
     incremental pipeline (one solver, prefix push/pop scopes, assumption\n\
     deltas, learned clauses carried across goals) and once re-bit-blasting\n\
     every goal into a fresh solver. Canonical model extraction makes the\n\
     verdicts AND packet bytes byte-identical; the win is solver work.\n\n";
  let tm = Telemetry.get () in
  let stat name stats = Option.value ~default:0 (List.assoc_opt name stats) in
  let fixtures =
    let entry_goals enc = Packetgen.entry_coverage_goals enc in
    let explore enc =
      Packetgen.entry_coverage_goals enc @ Data_campaign.exploratory_goals enc
    in
    let trace enc =
      Packetgen.trace_coverage_goals enc
        ~tables:[ "ipv4_table"; "acl_ingress_table" ]
    in
    [ ("middleblock/entry", Middleblock.program,
       Workload.scaled (if !quick then 0.05 else 0.25) Workload.inst1, entry_goals);
      ("middleblock/explore", Middleblock.program,
       Workload.scaled (if !quick then 0.05 else 0.1) Workload.inst1, explore);
      ("middleblock/trace", Middleblock.program, Workload.small, trace);
      ("wan/entry", Wan.program,
       Workload.scaled (if !quick then 0.05 else 0.1) Workload.inst2, entry_goals) ]
  in
  Printf.printf "%-22s %6s | %10s %9s | %10s %9s | %7s %5s\n" "fixture" "goals"
    "scr.confl" "scr.time" "inc.confl" "inc.time" "fewer" "same";
  Printf.printf "%s\n" (String.make 92 '-');
  let rows =
    List.map
      (fun (name, program, profile, mk_goals) ->
        let entries = Workload.generate ~seed:42 program profile in
        let enc = Symexec.encode program entries in
        let goals = mk_goals enc in
        let run incremental =
          let t0 = now () in
          let r = Packetgen.generate ~incremental enc goals in
          (r, now () -. t0)
        in
        let scratch, t_scr = run false in
        let hits0 = Telemetry.counter tm "smt.incremental_hits" in
        let reused0 = Telemetry.counter tm "smt.clauses_reused" in
        let inc, t_inc = run true in
        let hits = Telemetry.counter tm "smt.incremental_hits" - hits0 in
        let reused = Telemetry.counter tm "smt.clauses_reused" - reused0 in
        let identical =
          List.length scratch.Packetgen.packets = List.length inc.Packetgen.packets
          && List.for_all2
               (fun (a : Packetgen.test_packet) (b : Packetgen.test_packet) ->
                 a.tp_goal = b.tp_goal && a.tp_port = b.tp_port
                 && a.tp_bytes = b.tp_bytes)
               scratch.Packetgen.packets inc.Packetgen.packets
        in
        let c_scr = stat "conflicts" scratch.Packetgen.solver_stats in
        let c_inc = stat "conflicts" inc.Packetgen.solver_stats in
        let fewer =
          if c_scr = 0 then 0.
          else 100. *. float_of_int (c_scr - c_inc) /. float_of_int c_scr
        in
        Printf.printf "%-22s %6d | %10d %8.2fs | %10d %8.2fs | %6.1f%% %5b\n%!"
          name (List.length goals) c_scr t_scr c_inc t_inc fewer identical;
        (name, List.length goals, c_scr, c_inc, t_scr, t_inc, identical, hits,
         reused))
      fixtures
  in
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let c_scr = tot (fun (_, _, c, _, _, _, _, _, _) -> c) in
  let c_inc = tot (fun (_, _, _, c, _, _, _, _, _) -> c) in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, id, _, _) -> id) rows
  in
  let reduction =
    if c_scr = 0 then 0.
    else 100. *. float_of_int (c_scr - c_inc) /. float_of_int c_scr
  in
  Printf.printf "%s\n" (String.make 92 '-');
  Printf.printf
    "total conflicts: scratch %d, incremental %d (%.1f%% fewer; target >= 30%%)\n\
     identical packets on every fixture: %b\n"
    c_scr c_inc reduction all_identical;
  (* Snapshot for trend tracking; committed as BENCH_smt_incremental.json. *)
  let json =
    let row (name, goals, cs, ci, ts, ti, id, hits, reused) =
      Printf.sprintf
        "    {\"fixture\": %S, \"goals\": %d, \"scratch_conflicts\": %d, \
         \"incremental_conflicts\": %d, \"scratch_time_s\": %.3f, \
         \"incremental_time_s\": %.3f, \"identical_packets\": %b, \
         \"incremental_hits\": %d, \"clauses_reused\": %d}"
        name goals cs ci ts ti id hits reused
    in
    Printf.sprintf
      "{\n  \"artifact\": \"smt_incremental\",\n  \"fixtures\": [\n%s\n  ],\n  \
       \"total_scratch_conflicts\": %d,\n  \"total_incremental_conflicts\": %d,\n  \
       \"conflict_reduction_pct\": %.1f,\n  \"identical_packets\": %b\n}\n"
      (String.concat ",\n" (List.map row rows))
      c_scr c_inc reduction all_identical
  in
  let oc = open_out "BENCH_smt_incremental.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_smt_incremental.json\n";
  if not all_identical then failwith "incremental/scratch packet mismatch";
  if not !quick && reduction < 30. then
    failwith
      (Printf.sprintf "conflict reduction %.1f%% below the 30%% target" reduction)

(* ------------------------------------------------------------------ *)
(* Taint: static nondeterminism analysis driving set-valued verdicts   *)
(* ------------------------------------------------------------------ *)

let taint_bench () =
  banner "Taint: set-valued verdicts vs. exhaustive hash-round enumeration";
  Printf.printf
    "Each fixture data campaign runs twice against a seeded-hash switch:\n\
     once with the static taint pass on (hash/selector-tainted branch goals\n\
     skipped before the SMT stage, verdicts via the set-valued oracle) and\n\
     once with it off (every goal solved, every divergence candidate judged\n\
     by exhaustive hash-round enumeration). Both runs must be clean — the\n\
     set-valued fast paths may only admit behaviours enumeration admits.\n\n";
  let tm = Telemetry.get () in
  let fixtures =
    [ ("middleblock", Middleblock.program,
       if !quick then Workload.small else Workload.scaled 0.25 Workload.inst1);
      ("wan", Wan.program,
       if !quick then Workload.small else Workload.scaled 0.1 Workload.inst2) ]
  in
  Printf.printf "%-14s %6s %7s %7s %10s %9s %6s | %8s %8s\n" "fixture"
    "goals" "tainted" "admits" "escalated" "rds.saved" "clean" "on(s)" "off(s)";
  Printf.printf "%s\n" (String.make 92 '-');
  let rows =
    List.map
      (fun (name, program, profile) ->
        let entries = Workload.generate ~seed:42 program profile in
        let counter n = Telemetry.counter tm n in
        let run taint =
          let stack = Stack.create program in
          let t0 = now () in
          let incidents, stats =
            Data_campaign.run stack
              { (Data_campaign.default_config entries) with
                taint; test_packet_io = false }
          in
          (incidents, stats, now () -. t0)
        in
        (* Off first so the on-run's counter deltas are easy to snapshot. *)
        let inc_off, stats_off, t_off = run false in
        let tainted0 = counter "analysis.tainted_goals" in
        let admits0 = counter "oracle.dataplane_set_admits" in
        let esc0 = counter "oracle.dataplane_escalations" in
        let saved0 = counter "oracle.enum_rounds_saved" in
        let inc_on, stats_on, t_on = run true in
        let tainted = counter "analysis.tainted_goals" - tainted0 in
        let admits = counter "oracle.dataplane_set_admits" - admits0 in
        let escalated = counter "oracle.dataplane_escalations" - esc0 in
        let saved = counter "oracle.enum_rounds_saved" - saved0 in
        let clean = inc_on = [] && inc_off = [] in
        let skipped = stats_off.Report.ds_goals - stats_on.Report.ds_goals in
        Printf.printf "%-14s %6d %7d %7d %10d %9d %6b | %7.2fs %7.2fs\n%!" name
          stats_off.Report.ds_goals tainted admits escalated saved clean t_on
          t_off;
        (name, stats_off.Report.ds_goals, tainted, skipped, admits, escalated,
         saved, clean, t_on, t_off))
      fixtures
  in
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let tainted = tot (fun (_, _, t, _, _, _, _, _, _, _) -> t) in
  let skipped = tot (fun (_, _, _, s, _, _, _, _, _, _) -> s) in
  let saved = tot (fun (_, _, _, _, _, _, s, _, _, _) -> s) in
  let all_clean = List.for_all (fun (_, _, _, _, _, _, _, c, _, _) -> c) rows in
  let totf f = List.fold_left (fun a r -> a +. f r) 0. rows in
  let t_on = totf (fun (_, _, _, _, _, _, _, _, t, _) -> t) in
  let t_off = totf (fun (_, _, _, _, _, _, _, _, _, t) -> t) in
  let delta_pct = if t_off = 0. then 0. else 100. *. (t_off -. t_on) /. t_off in
  Printf.printf "%s\n" (String.make 92 '-');
  Printf.printf
    "goals reclassified tainted: %d (= SMT attempts skipped: %d), hash-round \
     executions saved: %d\nwall-clock: %.2fs with taint vs %.2fs without \
     (%.1f%% delta); clean on every fixture: %b\n"
    tainted skipped saved t_on t_off delta_pct all_clean;
  (* Snapshot for trend tracking; committed as BENCH_taint.json. *)
  let json =
    let row (name, goals, tainted, skipped, admits, escalated, saved, clean,
             t_on, t_off) =
      Printf.sprintf
        "    {\"fixture\": %S, \"goals\": %d, \"tainted_goals\": %d, \
         \"smt_attempts_skipped\": %d, \"set_admits\": %d, \
         \"escalations\": %d, \"enum_rounds_saved\": %d, \"clean\": %b, \
         \"time_taint_s\": %.3f, \"time_enum_s\": %.3f}"
        name goals tainted skipped admits escalated saved clean t_on t_off
    in
    Printf.sprintf
      "{\n  \"artifact\": \"taint\",\n  \"fixtures\": [\n%s\n  ],\n  \
       \"total_tainted_goals\": %d,\n  \"total_smt_attempts_skipped\": %d,\n  \
       \"total_enum_rounds_saved\": %d,\n  \"wallclock_delta_pct\": %.1f,\n  \
       \"clean\": %b\n}\n"
      (String.concat ",\n" (List.map row rows))
      tainted skipped saved delta_pct all_clean
  in
  let oc = open_out "BENCH_taint.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_taint.json\n";
  if not all_clean then
    failwith "set-valued verdicts reported incidents a clean switch should not";
  if tainted = 0 then failwith "taint pass reclassified no goals on WCMP models";
  if saved = 0 then failwith "set-valued verdicts saved no hash-round executions"

(* ------------------------------------------------------------------ *)
(* Triage: ddmin shrinkage and fingerprint dedup                       *)
(* ------------------------------------------------------------------ *)

let triage_bench () =
  banner "Triage: reproducer minimization (ddmin) and fingerprint dedup";
  Printf.printf
    "Per seeded fault: raw miscompares vs. fingerprint clusters, then each\n\
     cluster representative's reproducer delta-debugged to a 1-minimal\n\
     input. Shrink = raw size / minimized size; probes = replays spent.\n\n";
  let program = Middleblock.program in
  let profile =
    if !quick then Workload.small else Workload.scaled 0.1 Workload.inst1
  in
  let entries = Workload.generate ~seed:42 program profile in
  let catalogue = Catalogue.pins program entries in
  let interesting (f : Fault.t) =
    match f.kind with
    | Fault.Reject_valid_insert _ | Fault.Syncd_drops_table _ -> true
    | _ -> false
  in
  let faults =
    let sel = List.filter interesting catalogue in
    let n = if !quick then 2 else 4 in
    List.filteri (fun i _ -> i < n) sel
  in
  let tm = Telemetry.get () in
  let max_probes = if !quick then 64 else 256 in
  List.iter
    (fun (fault : Fault.t) ->
      let mk () = Stack.create ~faults:[ fault ] program in
      let config =
        { (Harness.default_config entries) with
          control = { Control_campaign.default_config with batches = 2; seed = 99 };
          triage = Some { Harness.default_triage with minimize = false } }
      in
      let report = Harness.validate mk config in
      let clusters = Option.value ~default:[] report.Report.clusters in
      let miscompares =
        List.fold_left (fun a (c : Report.cluster) -> a + c.cl_count) 0 clusters
      in
      Printf.printf "%s: %d miscompare(s) -> %d cluster(s)\n" fault.Fault.id
        miscompares (List.length clusters);
      List.iteri
        (fun i (c : Report.cluster) ->
          match c.cl_example.Report.repro with
          | Some r when i < 5 ->
              let before = Telemetry.counter tm "triage.ddmin_probes" in
              let r' = Harness.minimize_repro mk ~max_probes r in
              let probes = Telemetry.counter tm "triage.ddmin_probes" - before in
              let raw = Repro.size r and minimized = Repro.size r' in
              Printf.printf "  %-60s %4d -> %3d  %5.1fx %5d probes\n"
                c.cl_fingerprint raw minimized
                (float_of_int raw /. float_of_int (max 1 minimized))
                probes
          | _ -> ())
        clusters)
    faults

(* ------------------------------------------------------------------ *)
(* Parallel: fork-based campaign sharding speedup                      *)
(* ------------------------------------------------------------------ *)

let parallel_bench () =
  banner "Parallel: fork-based campaign sharding (switchv validate --jobs)";
  Printf.printf
    "Both campaigns at shards=4, executed with 1, 2, and 4 worker\n\
     processes. The shard decomposition is fixed by the shard count, so\n\
     every jobs value must report the identical incident set; the only\n\
     thing that changes is wall-clock time.\n\n";
  let program = Middleblock.program in
  let profile =
    if !quick then Workload.small else Workload.scaled 0.1 Workload.inst1
  in
  let entries = Workload.generate ~seed:42 program profile in
  let catalogue = Catalogue.pins program entries in
  let fault_matching pred =
    match List.find_opt (fun (f : Fault.t) -> pred f.Fault.kind) catalogue with
    | Some f -> [ f ]
    | None -> []
  in
  let incident_set incidents = List.map Report.incident_ipc_to_json incidents in
  let row name jobs seconds base_seconds identical =
    Printf.printf "%-22s jobs=%d %8.2fs  %5.2fx  incidents identical: %b\n%!"
      name jobs seconds
      (if seconds > 0. then base_seconds /. seconds else 0.)
      identical
  in
  let bench name runner =
    let t1, i1 = runner 1 in
    row name 1 t1 t1 true;
    List.iter
      (fun jobs ->
        let t, i = runner jobs in
        row name jobs t t1 (incident_set i = incident_set i1))
      [ 2; 4 ]
  in
  (* Control campaign: seed-range shards against a fault the oracle sees. *)
  let control_faults =
    fault_matching (function Fault.Reject_valid_insert _ -> true | _ -> false)
  in
  let control_cfg =
    { Control_campaign.default_config with
      batches = (if !quick then 8 else 48);
      seed = 99;
      shards = 4;
      max_incidents = 1000 }
  in
  bench "control campaign" (fun jobs ->
      let mk () = Stack.create ~faults:control_faults program in
      let t0 = now () in
      let incidents, _ = Control_campaign.run_sharded ~jobs mk control_cfg in
      (now () -. t0, incidents));
  (* Data campaign: coverage-goal slices against a fault the differ sees. *)
  let data_faults =
    fault_matching (function Fault.Syncd_drops_table _ -> true | _ -> false)
  in
  let data_cfg =
    { (Data_campaign.default_config entries) with
      shards = 4;
      test_packet_io = false;
      max_incidents = 1000 }
  in
  bench "data campaign" (fun jobs ->
      let stack = Stack.create ~faults:data_faults program in
      let t0 = now () in
      let incidents, _ = Data_campaign.run ~jobs stack data_cfg in
      (now () -. t0, incidents))

(* ------------------------------------------------------------------ *)
(* Obs: instrumentation overhead on the hot paths                      *)
(* ------------------------------------------------------------------ *)

let obs_overhead_bench () =
  banner "Obs: telemetry + coverage accounting overhead on hot paths";
  let reps = if !quick then 3 else 9 in
  let budget_pct = if !quick then 10. else 5. in
  Printf.printf
    "Each hot path runs under an enabled registry (counters, histograms,\n\
     spans, per-edge coverage accounting — the always-on configuration)\n\
     and a disabled one (every telemetry call short-circuits on one bool).\n\
     The two configurations are interleaved rep-by-rep so cache and\n\
     scheduler drift lands on both sides; best-of-%d per configuration.\n\
     Budget: <= %.0f%%.\n\n"
    reps budget_pct;
  let profile =
    if !quick then Workload.small else Workload.scaled 0.1 Workload.inst1
  in
  let entries = Workload.generate ~seed:42 Middleblock.program profile in
  let time_pair f =
    let run ~enabled =
      let t = Telemetry.create () in
      Telemetry.set_enabled t enabled;
      Telemetry.with_registry t (fun () ->
          let t0 = now () in
          ignore (f ());
          now () -. t0)
    in
    ignore (run ~enabled:false);
    ignore (run ~enabled:true);
    let best_off = ref infinity and best_on = ref infinity in
    for _ = 1 to reps do
      best_off := Float.min !best_off (run ~enabled:false);
      best_on := Float.min !best_on (run ~enabled:true)
    done;
    (!best_off, !best_on)
  in
  (* genpackets: encoding + SMT goal solving, validate's "Generation"
     phase (telemetry here is spans + per-check counter deltas). *)
  let genpackets () =
    let enc = Symexec.encode Middleblock.program entries in
    Packetgen.generate enc (Packetgen.entry_coverage_goals enc)
  in
  (* inject: the bmv2 interpreter loop, validate's "Testing" phase —
     where the per-edge coverage counters were added. *)
  let inject =
    let state = State.create () in
    List.iter (fun e -> ignore (State.insert state e)) entries;
    let cfg =
      { Interp.program = Middleblock.program; state; hash_mode = Interp.Fixed 0;
        mirror_map = [] }
    in
    let packets =
      List.init 64 (fun i ->
          Switchv_packet.Packet.to_bytes
            (Switchv_packet.Packet.simple_ipv4 ~src:"192.0.2.1"
               ~dst:(Printf.sprintf "10.%d.%d.%d" (i mod 200) (i / 8) (succ i mod 251))
               ()))
    in
    let rounds = if !quick then 20 else 60 in
    fun () ->
      for _ = 1 to rounds do
        List.iter (fun p -> ignore (Interp.run cfg ~ingress_port:1 p)) packets
      done
  in
  let paths =
    [ ("genpackets", fun () -> ignore (genpackets ())); ("inject", inject) ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let off, on = time_pair f in
        let pct = if off > 0. then 100. *. (on -. off) /. off else 0. in
        Printf.printf
          "%-12s disabled %8.3fs   enabled %8.3fs   overhead %+6.2f%%\n%!" name
          off on pct;
        (name, off, on, pct))
      paths
  in
  let max_pct =
    List.fold_left (fun a (_, _, _, p) -> Float.max a p) neg_infinity rows
  in
  let json =
    let row (n, off, on, p) =
      Printf.sprintf
        "    {\"path\": %S, \"disabled_s\": %.4f, \"enabled_s\": %.4f, \
         \"overhead_pct\": %.2f}"
        n off on p
    in
    Printf.sprintf
      "{\n  \"artifact\": \"obs_overhead\",\n  \"budget_pct\": %.1f,\n  \
       \"paths\": [\n%s\n  ],\n  \"max_overhead_pct\": %.2f\n}\n"
      budget_pct
      (String.concat ",\n" (List.map row rows))
      max_pct
  in
  let oc = open_out "BENCH_obs_overhead.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_obs_overhead.json\n";
  if max_pct > budget_pct then
    failwith
      (Printf.sprintf "telemetry overhead %.2f%% exceeds the %.0f%% budget"
         max_pct budget_pct)

(* ------------------------------------------------------------------ *)
(* Fabric: multi-switch campaign throughput and fault localization     *)
(* ------------------------------------------------------------------ *)

let fabric_bench () =
  banner "Fabric: multi-switch campaign throughput and hop localization";
  Printf.printf
    "Throughput: an unseeded fabric campaign per topology size (every flow\n\
     crosses both the stack fabric and the model fabric, judged per hop\n\
     and end-to-end; hops/s counts per-switch packet processings).\n\
     Localization: a 3-switch line with each data-plane fault seeded on\n\
     sw1 — accuracy is the fraction of faults caught AND attributed only\n\
     to sw1, never to an innocent neighbour.\n\n";
  let sizes =
    if !quick then [ (Topo.Line, 3); (Topo.Star, 4) ]
    else
      [ (Topo.Line, 3); (Topo.Line, 6); (Topo.Star, 6); (Topo.Mesh, 4);
        (Topo.Leaf_spine, 6) ]
  in
  Printf.printf "%-12s %8s %6s %6s %9s %8s %9s %9s\n" "topology" "switches"
    "flows" "hops" "delivered" "time" "flows/s" "hops/s";
  Printf.printf "%s\n" (String.make 76 '-');
  let throughput =
    List.map
      (fun (shape, switches) ->
        let cfg = Fabric_campaign.default_config shape switches in
        let incidents, stats = Fabric_campaign.run Middleblock.program cfg in
        assert (incidents = []);
        let dt = stats.Report.fs_duration in
        let per x = if dt > 0. then float_of_int x /. dt else 0. in
        Printf.printf "%-12s %8d %6d %6d %9d %7.2fs %9.0f %9.0f\n%!"
          stats.Report.fs_shape switches stats.Report.fs_flows
          stats.Report.fs_hops stats.Report.fs_delivered dt
          (per stats.Report.fs_flows) (per stats.Report.fs_hops);
        (stats, per stats.Report.fs_flows, per stats.Report.fs_hops))
      sizes
  in
  (* Localization accuracy over the data-plane fault kinds that can fire on
     a middleblock line fabric ([Encap_reversed_dst] has no tunnel tables
     to act on). *)
  let topo3 = Topo.build Topo.Line 3 in
  let catalogue =
    Catalogue.topo Middleblock.program
      (Routes.entries topo3 Middleblock.program ~switch:1)
  in
  let extra =
    List.map
      (fun (name, kind) ->
        Fault.make ~id:("BENCH-" ^ name) ~component:Fault.Hardware kind name)
      [ ("drop-dst-ip",
         Fault.Drop_dst_ip (Switchv_packet.Packet.ipv4_of_string (Routes.host_ip 2)));
        ("punt-ether-type", Fault.Punt_ether_type 0x88CC);
        ("dscp-remark", Fault.Dscp_remark_zero 8);
        ("mirror-ignored", Fault.Mirror_ignored);
        ("punt-lost", Fault.Punt_lost);
        ("submit-dropped", Fault.Submit_to_ingress_dropped);
        ("po-punted-back", Fault.Packet_out_punted_back) ]
  in
  let faults =
    let all = catalogue @ extra in
    if !quick then List.filteri (fun i _ -> i < 4) all else all
  in
  Printf.printf "\n%-28s %9s %9s %s\n" "seeded fault (on sw1)" "incidents"
    "localized" "verdict";
  Printf.printf "%s\n" (String.make 72 '-');
  let localization =
    List.map
      (fun (fault : Fault.t) ->
        let cfg =
          { (Fabric_campaign.default_config Topo.Line 3) with
            Fabric_campaign.faults = [ (1, [ fault ]) ];
            max_incidents = 200 }
        in
        let incidents, _ = Fabric_campaign.run Middleblock.program cfg in
        let hops =
          List.filter_map
            (fun (i : Report.incident) ->
              match i.Report.context with
              | Some { Report.ctx_hop = Some h; _ } -> Some h
              | _ -> None)
            incidents
        in
        let correct =
          incidents <> [] && hops <> []
          && List.for_all (String.equal "sw1") hops
        in
        Printf.printf "%-28s %9d %9d %s\n%!" fault.Fault.id
          (List.length incidents) (List.length hops)
          (if correct then "sw1" else "MISLOCALIZED");
        (fault.Fault.id, List.length incidents, correct))
      faults
  in
  let correct = List.length (List.filter (fun (_, _, c) -> c) localization) in
  let accuracy = float_of_int correct /. float_of_int (List.length faults) in
  Printf.printf "%s\n" (String.make 72 '-');
  Printf.printf "localization accuracy: %d/%d (%.0f%%)\n" correct
    (List.length faults) (100. *. accuracy);
  (* Snapshot for trend tracking; committed as BENCH_fabric.json. *)
  let json =
    let trow ((s : Report.fabric_stats), fps, hps) =
      Printf.sprintf
        "    {\"shape\": %S, \"switches\": %d, \"flows\": %d, \"hops\": %d, \
         \"delivered\": %d, \"dropped\": %d, \"duration_s\": %.3f, \
         \"flows_per_s\": %.0f, \"hops_per_s\": %.0f}"
        s.Report.fs_shape s.Report.fs_switches s.Report.fs_flows
        s.Report.fs_hops s.Report.fs_delivered s.Report.fs_dropped
        s.Report.fs_duration fps hps
    in
    let lrow (id, incidents, correct) =
      Printf.sprintf "    {\"fault\": %S, \"incidents\": %d, \"localized\": %b}"
        id incidents correct
    in
    Printf.sprintf
      "{\n  \"artifact\": \"fabric\",\n  \"throughput\": [\n%s\n  ],\n  \
       \"localization\": [\n%s\n  ],\n  \"localization_accuracy\": %.3f\n}\n"
      (String.concat ",\n" (List.map trow throughput))
      (String.concat ",\n" (List.map lrow localization))
      accuracy
  in
  let oc = open_out "BENCH_fabric.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_fabric.json\n";
  if accuracy < 1.0 then
    failwith "a seeded fabric fault was missed or localized to the wrong switch"

(* ------------------------------------------------------------------ *)
(* Greybox: coverage-guided scheduling vs. the blind fuzzer            *)
(* ------------------------------------------------------------------ *)

let greybox_bench () =
  banner "Greybox: coverage-guided scheduling vs. blind fuzzing";
  Printf.printf
    "Part 1 — edges per packet budget: each fixture runs the control\n\
     campaign with the feedback loop on (probes scheduled from the corpus,\n\
     power-schedule mutation targets), then a blind baseline given the\n\
     exact same injection budget of feedback-free random packets. The\n\
     guided run must cover strictly more model edges.\n\
     Part 2 — time to detection: every fault in the catalogue is hunted\n\
     by the full harness in both modes; guidance must not lose a fault\n\
     the blind pipeline detects.\n\n";
  (* --- part 1: edges per N packets ------------------------------------ *)
  let fixtures =
    [ ("middleblock", Middleblock.program); ("wan", Wan.program) ]
  in
  let batches = if !quick then 8 else 12 in
  Printf.printf "%-14s %8s %8s %8s %8s %7s\n" "fixture" "packets" "guided"
    "blind" "corpus" "seeded";
  Printf.printf "%s\n" (String.make 60 '-');
  let cov_rows =
    List.map
      (fun (name, program) ->
        let config =
          { Control_campaign.default_config with batches; seed = 11 }
        in
        (* Guided: the campaign's own probe/corpus/power-schedule loop. *)
        let tele = Telemetry.create () in
        let covered_guided, probes, seeded =
          Telemetry.with_registry tele (fun () ->
              let stack = Stack.create program in
              ignore (Control_campaign.run stack config);
              ( (Switchv_obs.Coverage.of_registry tele program)
                  .Switchv_obs.Coverage.covered,
                Telemetry.counter tele "fuzzer.greybox.probes",
                Telemetry.counter tele "fuzzer.greybox.seeded_bases" ))
        in
        let corpus = Telemetry.counter tele "fuzzer.greybox.corpus_admitted" in
        (* Blind baseline: same campaign without feedback, then the same
           injection budget of fresh random packets — a Greybox instance
           that never observes draws fresh-only, so this is exactly the
           feedback-free probe stream. *)
        let tele_b = Telemetry.create () in
        let covered_blind =
          Telemetry.with_registry tele_b (fun () ->
              let stack = Stack.create program in
              ignore
                (Control_campaign.run stack { config with greybox = false });
              let gb = Switchv_fuzzer.Greybox.create ~program ~seed:11 () in
              for _ = 1 to probes do
                let port, bytes = Switchv_fuzzer.Greybox.probe_packet gb in
                ignore (Stack.inject stack ~ingress_port:port bytes)
              done;
              (Switchv_obs.Coverage.of_registry tele_b program)
                .Switchv_obs.Coverage.covered)
        in
        Printf.printf "%-14s %8d %8d %8d %8d %7d\n%!" name probes
          covered_guided covered_blind corpus seeded;
        (name, probes, covered_guided, covered_blind, corpus, seeded))
      fixtures
  in
  (* --- part 2: time to detection across the fault catalogue ----------- *)
  let entries = workload_of Pins in
  let faults = catalogue_of Pins entries in
  let faults = if !quick then List.filteri (fun i _ -> i < 6) faults else faults in
  let hunt greybox fault =
    let config =
      { (Harness.default_config entries) with
        control =
          { Control_campaign.default_config with
            batches = (if !quick then 2 else 4);
            seed = 99 };
        cache = Some (Cache.in_memory ());
        greybox }
    in
    let mk () = Stack.create ~faults:[ fault ] Middleblock.program in
    let t0 = now () in
    let found = Harness.detect mk config in
    (found, now () -. t0)
  in
  Printf.printf "\n%-22s %10s %10s %9s %9s\n" "fault" "guided" "blind"
    "t.gd(s)" "t.bl(s)";
  Printf.printf "%s\n" (String.make 66 '-');
  let det_rows =
    List.map
      (fun (fault : Fault.t) ->
        let found_g, t_g = hunt true fault in
        let found_b, t_b = hunt false fault in
        let show = function
          | Some d -> Report.detector_to_string d
          | None -> "missed"
        in
        Printf.printf "%-22s %10s %10s %8.2fs %8.2fs\n%!" fault.Fault.id
          (show found_g) (show found_b) t_g t_b;
        (fault.Fault.id, found_g <> None, found_b <> None, t_g, t_b))
      faults
  in
  let detected which = List.length (List.filter which det_rows) in
  let n_guided = detected (fun (_, g, _, _, _) -> g) in
  let n_blind = detected (fun (_, _, b, _, _) -> b) in
  let lost =
    List.filter_map
      (fun (id, g, b, _, _) -> if b && not g then Some id else None)
      det_rows
  in
  let sum f = List.fold_left (fun a r -> a +. f r) 0. det_rows in
  let t_guided = sum (fun (_, _, _, t, _) -> t) in
  let t_blind = sum (fun (_, _, _, _, t) -> t) in
  Printf.printf "%s\n" (String.make 66 '-');
  Printf.printf
    "detected: %d/%d guided vs %d/%d blind; total hunt time %.1fs vs %.1fs\n"
    n_guided (List.length det_rows) n_blind (List.length det_rows) t_guided
    t_blind;
  (* Snapshot for trend tracking; committed as BENCH_greybox.json. *)
  let json =
    let cov_row (name, probes, g, b, corpus, seeded) =
      Printf.sprintf
        "    {\"fixture\": %S, \"packets\": %d, \"edges_guided\": %d, \
         \"edges_blind\": %d, \"corpus_seeds\": %d, \"seeded_bases\": %d}"
        name probes g b corpus seeded
    in
    let det_row (id, g, b, t_g, t_b) =
      Printf.sprintf
        "    {\"fault\": %S, \"detected_guided\": %b, \"detected_blind\": %b, \
         \"time_guided_s\": %.3f, \"time_blind_s\": %.3f}"
        id g b t_g t_b
    in
    Printf.sprintf
      "{\n  \"artifact\": \"greybox\",\n  \"edges_per_budget\": [\n%s\n  ],\n  \
       \"detection\": [\n%s\n  ],\n  \"detected_guided\": %d,\n  \
       \"detected_blind\": %d,\n  \"total_time_guided_s\": %.1f,\n  \
       \"total_time_blind_s\": %.1f\n}\n"
      (String.concat ",\n" (List.map cov_row cov_rows))
      (String.concat ",\n" (List.map det_row det_rows))
      n_guided n_blind t_guided t_blind
  in
  let oc = open_out "BENCH_greybox.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_greybox.json\n";
  List.iter
    (fun (name, probes, g, b, _, _) ->
      if g <= b then
        failwith
          (Printf.sprintf
             "guided covered no more edges than blind on %s (%d vs %d over %d \
              packets)"
             name g b probes))
    cov_rows;
  if lost <> [] then
    failwith
      ("greybox lost faults the blind pipeline detects: "
      ^ String.concat ", " lost)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  banner "Bechamel micro-benchmarks (kernels behind each table)";
  let open Bechamel in
  let entries_small = Workload.generate ~seed:5 Middleblock.program Workload.small in
  let state = State.create () in
  List.iter (fun e -> ignore (State.insert state e)) entries_small;
  let interp_cfg =
    { Interp.program = Middleblock.program; state; hash_mode = Interp.Seeded 3;
      mirror_map = [] }
  in
  let packet =
    Switchv_packet.Packet.to_bytes
      (Switchv_packet.Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"10.0.1.7" ())
  in
  let tests =
    [ Test.make ~name:"table3.symbolic_generation_small"
        (Staged.stage (fun () ->
             let enc = Symexec.encode Middleblock.program entries_small in
             ignore (Packetgen.generate enc (Packetgen.entry_coverage_goals enc))));
      Test.make ~name:"table3.fuzzer_batch"
        (let fuzzer = Fuzzer.create Middleblock.info (Rng.create 3) in
         Staged.stage (fun () -> ignore (Fuzzer.next_batch fuzzer)));
      Test.make ~name:"table1.interp_packet"
        (Staged.stage (fun () -> ignore (Interp.run interp_cfg ~ingress_port:1 packet)));
      Test.make ~name:"table1.oracle_classify"
        (let oracle = Oracle.create Middleblock.info in
         let u = Request.insert (List.hd entries_small) in
         Staged.stage (fun () -> ignore (Oracle.classify oracle u)));
      Test.make ~name:"table2.trivial_suite"
        (Staged.stage (fun () ->
             let s = Stack.create Middleblock.program in
             ignore (Trivial_suite.run s)));
      Test.make ~name:"core.bitvec_add_128"
        (let a = Rng.bitvec (Rng.create 1) 128 and b = Rng.bitvec (Rng.create 2) 128 in
         Staged.stage (fun () -> ignore (Bitvec.add a b))) ]
  in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
      let clock = Toolkit.Instance.monotonic_clock in
      let results = Benchmark.all cfg [ clock ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-42s %14.0f ns/run\n%!" name est
          | _ -> Printf.printf "%-42s (no estimate)\n%!" name)
        analysis)
    tests


(* ------------------------------------------------------------------ *)
(* Scale: million-entry tables — indexed match structures + staged     *)
(* evaluator vs. the tree-walking linear-scan interpreter              *)
(* ------------------------------------------------------------------ *)

let scale_bench () =
  banner "Scale: indexed match + compiled evaluator at 1k..1M entries";
  Printf.printf
    "Per tier: install a scale route workload (unique /24s + nexthop\n\
     chain), measure control-plane writes/sec with live index\n\
     maintenance, then packets/sec through the staged evaluator\n\
     (Compile) and the linear-scan interpreter (Interp) on the same\n\
     state. Gate: >= 10x packets/sec at the 100k tier.\n\n";
  let program = Middleblock.program in
  let tiers =
    if !quick then [ 1_000; 10_000; 100_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let mk_packet i =
    Switchv_packet.Packet.to_bytes
      { Switchv_packet.Packet.headers =
          [ Switchv_packet.Packet.ethernet_frame ~dst:"02:00:00:00:0a:01"
              ~ether_type:0x0800 ();
            Switchv_packet.Packet.ipv4_header ~ttl:64 ~src:"192.0.2.1"
              ~dst:
                (Printf.sprintf "%d.%d.%d.1" (10 + (i lsr 16))
                   ((i land 0xFFFF) lsr 8)
                   (i land 0xFF))
              ();
          Switchv_packet.Packet.udp_header ~src_port:53 ~dst_port:443 () ];
        payload = "scale" }
  in
  Printf.printf "%-9s %12s %14s %14s %9s\n" "entries" "writes/s"
    "pps compiled" "pps interp" "speedup";
  Printf.printf "%s\n" (String.make 62 '-');
  let rows =
    List.map
      (fun n ->
        let entries = Workload.scale_routes program n in
        let chain, routes =
          List.partition (fun (e : Entry.t) -> e.e_table <> "ipv4_table") entries
        in
        let state = State.create () in
        List.iter (fun e -> ignore (State.insert state e)) chain;
        let cfg =
          { Interp.program; state; hash_mode = Interp.Fixed 0;
            mirror_map = Workload.mirror_map chain }
        in
        (* One staged run before the routes land: builds the per-table
           indexes, so the timed inserts below pay the incremental
           maintenance cost the campaigns pay. Also amortises staging. *)
        ignore (Compile.run cfg ~ingress_port:1 (mk_packet 0));
        let t0 = now () in
        List.iter (fun e -> ignore (State.insert state e)) routes;
        let t_write = now () -. t0 in
        let writes_per_s = float_of_int (List.length routes) /. t_write in
        (* Distinct dsts spread over the installed tier, reused cyclically. *)
        let probes = Array.init 256 (fun k -> mk_packet (k * (n / 256 + 1) mod n)) in
        let pps run reps =
          let t0 = now () in
          for k = 0 to reps - 1 do
            ignore (run cfg ~ingress_port:1 probes.(k mod 256))
          done;
          float_of_int reps /. (now () -. t0)
        in
        let reps_c = if !quick then 5_000 else 20_000 in
        let reps_i =
          if n <= 1_000 then 500
          else if n <= 10_000 then 100
          else if n <= 100_000 then 20
          else 3
        in
        let pps_compiled = pps Compile.run reps_c in
        let pps_interp = pps Interp.run reps_i in
        let speedup = pps_compiled /. pps_interp in
        Printf.printf "%-9d %12.0f %14.0f %14.1f %8.1fx\n%!" n writes_per_s
          pps_compiled pps_interp speedup;
        (n, writes_per_s, pps_compiled, pps_interp, speedup))
      tiers
  in
  let json =
    let row (n, w, pc, pi, sp) =
      Printf.sprintf
        "    {\"entries\": %d, \"writes_per_s\": %.0f, \"pps_compiled\": \
         %.0f, \"pps_interp\": %.1f, \"speedup\": %.1f}"
        n w pc pi sp
    in
    Printf.sprintf
      "{\n  \"artifact\": \"scale\",\n  \"tiers\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map row rows))
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote BENCH_scale.json\n";
  List.iter
    (fun (n, _, pc, pi, sp) ->
      if n = 100_000 && sp < 10.0 then
        failwith
          (Printf.sprintf
             "compiled evaluator below the 10x gate at 100k entries \
              (%.0f vs %.1f pps, %.1fx)"
             pc pi sp))
    rows

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  quick := List.mem "quick" args;
  let args = List.filter (fun a -> a <> "quick") args in
  let all =
    [ "table1"; "table2"; "table3"; "figure7"; "ablations"; "triage"; "parallel";
      "smt_incremental"; "taint"; "obs_overhead"; "fabric"; "greybox";
      "scale" ]
  in
  let selected = if args = [] then all else args in
  let t0 = now () in
  List.iter
    (fun artifact ->
      (* Per-artifact telemetry: reset so each snapshot covers one artifact,
         and emit it as one machine-readable JSON line for trend tracking. *)
      Telemetry.reset (Telemetry.get ());
      let known = ref true in
      (match artifact with
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "table3" -> table3 ()
      | "figure7" -> figure7 ()
      | "ablations" -> ablations ()
      | "triage" -> triage_bench ()
      | "parallel" -> parallel_bench ()
      | "smt_incremental" -> smt_incremental_bench ()
      | "taint" -> taint_bench ()
      | "obs_overhead" -> obs_overhead_bench ()
      | "fabric" -> fabric_bench ()
      | "greybox" -> greybox_bench ()
      | "scale" -> scale_bench ()
      | "micro" -> micro ()
      | other ->
          known := false;
          Printf.printf
            "unknown artifact %S (use \
             table1|table2|table3|figure7|ablations|triage|parallel|\
             smt_incremental|taint|obs_overhead|fabric|greybox|scale|micro|quick)\n"
            other);
      if !known then
        Printf.printf "\ntelemetry %s %s\n" artifact
          (Telemetry.snapshot_to_json (Telemetry.snapshot (Telemetry.get ()))))
    selected;
  Printf.printf "\ntotal bench time: %.1fs\n" (now () -. t0)
