(* Quickstart: the paper's running example end to end.

   Builds the Figure 2 routing pipeline as a P4 model, checks the Figure 3
   table entries against the control-plane contract (restrictions,
   references), runs a packet through the reference interpreter, and uses
   p4-symbolic to generate a test packet hitting a chosen entry — the
   example worked through in §5.

   Run with: dune exec examples/quickstart.exe *)

module Figure2 = Switchv_sai.Figure2
module Pretty = Switchv_p4ir.Pretty
module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Validate = Switchv_p4runtime.Validate
module State = Switchv_p4runtime.State
module Status = Switchv_p4runtime.Status
module Interp = Switchv_bmv2.Interp
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Packet = Switchv_packet.Packet
module Bitvec = Switchv_bitvec.Bitvec

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  let program = Figure2.program in
  let info = Figure2.info in

  section "The P4 model (Figure 2) as living documentation";
  print_endline (Pretty.program_to_string program);

  section "Control-plane validation of the Figure 3 entries";
  let state = State.create () in
  let check label entry =
    let verdict =
      match Validate.check_entry info entry with
      | Error s -> Format.asprintf "INVALID (%a)" Status.pp s
      | Ok () -> (
          match
            Validate.check_references info entry ~exists:(fun ~table ~key value ->
                State.exists_value state ~table ~key value)
          with
          | Error s -> Format.asprintf "INVALID (%a)" Status.pp s
          | Ok () ->
              ignore (State.insert state entry);
              "valid")
    in
    Format.printf "%s: %-10s %a@." label verdict Entry.pp entry
  in
  check "v1" Figure2.v1;
  check "v2" Figure2.v2;
  check "v3" Figure2.v3;
  check "i1" Figure2.i1;
  check "i2" Figure2.i2;
  check "i3" Figure2.i3;
  check "i4" Figure2.i4;
  check "i5" Figure2.i5;

  section "Data-plane execution of a concrete packet";
  (* Install an ACL entry assigning VRF 1, so the routes are reachable. *)
  let acl =
    Entry.make ~table:"acl_pre_ingress_table" ~priority:1
      ~matches:
        [ { fm_field = "dst_ip";
            fm_value =
              Entry.M_ternary
                (Switchv_bitvec.Ternary.of_prefix
                   (Switchv_bitvec.Prefix.of_ipv4_string "10.0.0.0/8")) } ]
      (Entry.Single { ai_name = "set_vrf"; ai_args = [ Bitvec.of_int ~width:16 1 ] })
  in
  ignore (State.insert state acl);
  let cfg =
    { Interp.program; state; hash_mode = Interp.Seeded 1; mirror_map = [] }
  in
  let packet = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"10.0.0.7" () in
  let b = Interp.run_packet cfg ~ingress_port:1 packet in
  Format.printf "packet to 10.0.0.7: %a@." Interp.pp_behavior b;
  Format.printf "  (i5 matches 10.0.*.* with prefix /16, i1 matches /8 — the longer prefix wins)@.";
  List.iter (fun (t, a) -> Format.printf "  %s -> %s@." t a) b.b_trace;

  section "p4-symbolic: generate a packet that hits entry i1";
  let entries = State.all state in
  let encoding = Symexec.encode program entries in
  let target = Entry.match_key Figure2.i1 in
  let goals =
    List.filter
      (fun (g : Packetgen.goal) ->
        g.goal_id = Printf.sprintf "entry:ipv4_table:%s" target)
      (Packetgen.entry_coverage_goals encoding)
  in
  let result = Packetgen.generate encoding goals in
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_bytes with
      | Some bytes ->
          Format.printf "goal %s: generated %d-byte packet on port %d@." tp.tp_goal
            (String.length bytes) tp.tp_port;
          let b = Interp.run cfg ~ingress_port:tp.tp_port bytes in
          Format.printf "  interpreter confirms: %a@." Interp.pp_behavior b;
          List.iter (fun (t, a) -> Format.printf "  %s -> %s@." t a) b.b_trace
      | None -> Format.printf "goal %s: UNSATISFIABLE@." tp.tp_goal)
    result.packets;

  section "Done";
  print_endline "See examples/nightly_validation.ml for the full SwitchV loop."
