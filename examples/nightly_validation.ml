(* Nightly validation: the full SwitchV loop (§2, §7 "Development
   Processes") against a simulated PINS middleblock switch.

   Two runs are shown: a clean switch (SwitchV must stay silent — no false
   positives) and a switch seeded with a bug from the catalogue (SwitchV
   must produce an incident report).

   Run with: dune exec examples/nightly_validation.exe *)

module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Harness = Switchv_core.Harness
module Report = Switchv_core.Report
module Cache = Switchv_symbolic.Cache

let () =
  let program = Middleblock.program in
  let entries = Workload.generate ~seed:11 program Workload.small in
  Printf.printf "workload: %d production-like entries\n%!" (List.length entries);

  (* Cache generated packets across the two runs: the specification is
     unchanged, so the second run skips the SMT stage (§6.3). *)
  let cache = Cache.in_memory () in
  let config = { (Harness.default_config entries) with cache = Some cache } in

  print_endline "\n--- run 1: clean switch (expect: no incidents) ---";
  let clean_report = Harness.validate (fun () -> Stack.create program) config in
  Format.printf "%a@." Report.pp clean_report;
  assert (Report.clean clean_report);

  print_endline "--- run 2: switch seeded with a catalogue bug ---";
  let fault =
    List.find
      (fun (f : Fault.t) -> f.kind = Fault.Ttl_trap_always)
      (Catalogue.pins program entries)
  in
  Format.printf "seeded: %a@.@." Fault.pp fault;
  let buggy_report =
    Harness.validate (fun () -> Stack.create ~faults:[ fault ] program) config
  in
  Format.printf "%a@." Report.pp buggy_report;
  (match Report.detected_by buggy_report with
  | Some d -> Printf.printf "detected by %s\n" (Report.detector_to_string d)
  | None -> print_endline "NOT DETECTED (unexpected)");

  (* Archive both reports the way the nightly job would: one JSON line per
     run, appended to a log that dashboards can ingest. *)
  let archive = Filename.temp_file "switchv_nightly" ".jsonl" in
  let oc = open_out archive in
  output_string oc (Report.to_json clean_report);
  output_char oc '\n';
  output_string oc (Report.to_json buggy_report);
  output_char oc '\n';
  close_out oc;
  Printf.printf "archived 2 reports to %s\n" archive
