// A hand-written P4 model in the dialect SwitchV's textual frontend
// accepts (the same dialect `switchv model` prints): a minimal edge
// router with VRF allocation, an IPv4 LPM table whose entries must
// reference allocated VRFs and nexthops, and a punt ACL.
//
// Load it with:
//   dune exec bin/switchv_cli.exe -- validate -f examples/models/edge_router.p4
//   dune exec bin/switchv_cli.exe -- genpackets -f examples/models/edge_router.p4 -v

header ethernet_t {
  bit<48> dst_addr;
  bit<48> src_addr;
  bit<16> ether_type;
}

header ipv4_t {
  bit<4> version;
  bit<4> ihl;
  bit<6> dscp;
  bit<2> ecn;
  bit<16> total_len;
  bit<16> identification;
  bit<3> flags;
  bit<13> frag_offset;
  bit<8> ttl;
  bit<8> protocol;
  bit<16> header_checksum;
  bit<32> src_addr;
  bit<32> dst_addr;
}

struct metadata_t {
  bit<16> vrf_id;
  bit<16> nexthop_id;
}

parser (start = start) {
  state start {
    packet.extract(headers.ethernet);
    transition select(ethernet.ether_type) {
      16w0x0800 : parse_ipv4;
      default : accept;
    }
  }
  state parse_ipv4 {
    packet.extract(headers.ipv4);
    transition accept;
  }
}

action no_action() {
}

action drop() {
  std.drop = 1w0x1;
}

action punt() {
  std.punt = 1w0x1;
  std.drop = 1w0x1;
}

action set_vrf(@refers_to(vrf_table, vrf_id) bit<16> vrf_id) {
  meta.vrf_id = vrf_id;
}

action forward(bit<16> port, bit<48> src_mac, bit<48> dst_mac) {
  std.egress_port = port;
  ethernet.src_addr = src_mac;
  ethernet.dst_addr = dst_mac;
}

@entry_restriction("vrf_id != 0")
@id(1)
table vrf_table {
  key = {
    meta.vrf_id : exact @name("vrf_id");
  }
  actions = { no_action }
  const default_action = no_action();
  size = 16;
}

@id(2)
table classifier_table {
  key = {
    ipv4.src_addr : ternary @name("src_ip");
    std.ingress_port : ternary @name("in_port");
  }
  actions = { set_vrf; no_action }
  const default_action = no_action();
  size = 32;
}

@id(3)
table nexthop_table {
  key = {
    meta.nexthop_id : exact @name("nexthop_id");
  }
  actions = { forward; drop }
  const default_action = drop();
  size = 32;
}

action set_nexthop(@refers_to(nexthop_table, nexthop_id) bit<16> nexthop_id) {
  meta.nexthop_id = nexthop_id;
}

@id(4)
table route_table {
  key = {
    meta.vrf_id : exact @refers_to(vrf_table, vrf_id) @name("vrf_id");
    ipv4.dst_addr : lpm @name("dst");
  }
  actions = { set_nexthop; drop }
  const default_action = drop();
  size = 256;
}

@entry_restriction("protocol != 0")
@id(5)
table punt_acl {
  key = {
    ipv4.protocol : ternary @name("protocol");
    ipv4.dst_addr : ternary @name("dst_ip");
  }
  actions = { punt; no_action }
  const default_action = no_action();
  size = 16;
}

control ingress {
  if (headers.ipv4.isValid()) {
    classifier_table.apply();
    vrf_table.apply();
    route_table.apply();
    if (meta.nexthop_id != 16w0x0) {
      nexthop_table.apply();
    }
    if (ipv4.ttl <= 8w0x1) {
      std.punt = 1w0x1;
      std.drop = 1w0x1;
    } else {
      ipv4.ttl = (ipv4.ttl - 8w0x1);
    }
    punt_acl.apply();
  }
}

control egress {
}
