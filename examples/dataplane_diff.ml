(* Data-plane differential testing in isolation (§5): p4-symbolic generates
   packets hitting every installed entry; each packet runs through the
   switch and the reference interpreter, and behaviours are compared as
   sets (round-robin hash enumeration handles WCMP non-determinism).

   The seeded bug mirrors the paper's Cerberus endianness find: the switch
   reverses the destination IP used for GRE encapsulation.

   Run with: dune exec examples/dataplane_diff.exe *)

module Cerberus = Switchv_sai.Cerberus
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Data_campaign = Switchv_core.Data_campaign
module Report = Switchv_core.Report

let () =
  let program = Cerberus.program in
  let entries = Workload.generate ~seed:3 program Workload.small in
  Printf.printf "installing %d entries on a Cerberus switch\n%!" (List.length entries);

  let fault =
    Fault.make ~id:"DEMO-2" ~component:Fault.Vendor_software Fault.Encap_reversed_dst
      "switch software reverses the encap destination IP (endianness)"
  in
  let stack = Stack.create ~faults:[ fault ] program in
  let config = Data_campaign.default_config entries in
  let incidents, stats = Data_campaign.run stack config in

  Printf.printf
    "goals: %d (covered %d, uncoverable %d); packets tested: %d\n"
    stats.ds_goals stats.ds_covered stats.ds_uncoverable stats.ds_packets_tested;
  Printf.printf "generation %.2fs, testing %.2fs\n" stats.ds_generation_time
    stats.ds_testing_time;
  Printf.printf "%d divergence(s); first few:\n" (List.length incidents);
  List.iteri
    (fun i inc -> if i < 3 then Format.printf "  %a@." Report.pp_incident inc)
    incidents;
  assert (incidents <> [])
