(* Models as source files: load a hand-written P4 model through the
   textual frontend, type-check it, exercise its control-plane contract,
   and generate covering packets — everything SwitchV offers, with the
   model living outside the binary ("living documentation" that is also
   executable).

   Run with: dune exec examples/model_from_source.exe *)

module P4parser = Switchv_p4ir.P4parser
module Typecheck = Switchv_p4ir.Typecheck
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module Stack = Switchv_switch.Stack
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Interp = Switchv_bmv2.Interp
module State = Switchv_p4runtime.State

let source_path = "examples/models/edge_router.p4"

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

let () =
  let source =
    (* dune runs examples from the workspace root or _build; try both. *)
    let candidates = [ source_path; Filename.concat ".." source_path ] in
    let path = List.find Sys.file_exists candidates in
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let program = P4parser.parse_exn ~name:"edge_router" source in
  Typecheck.check_exn program;
  Printf.printf "parsed %s: %d tables, %d actions\n" program.p_name
    (List.length program.p_tables) (List.length program.p_actions);

  (* Provision a switch running this model. *)
  let stack = Stack.create program in
  assert (Status.is_ok (Stack.push_p4info stack));
  let entries =
    [ Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 1)) ]
        (single "no_action" []);
      Entry.make ~table:"classifier_table" ~priority:1
        ~matches:
          [ fm "src_ip"
              (Entry.M_ternary (Ternary.of_prefix (Prefix.of_ipv4_string "192.0.2.0/24"))) ]
        (single "set_vrf" [ bv16 1 ]);
      Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (Entry.M_exact (bv16 1)) ]
        (single "forward"
           [ bv16 9;
             Switchv_packet.Packet.mac_of_string "02:00:00:00:0b:01";
             Switchv_packet.Packet.mac_of_string "02:00:00:00:0c:01" ]);
      Entry.make ~table:"route_table"
        ~matches:
          [ fm "vrf_id" (Entry.M_exact (bv16 1));
            fm "dst" (Entry.M_lpm (Prefix.of_ipv4_string "198.51.100.0/24")) ]
        (single "set_nexthop" [ bv16 1 ]);
      Entry.make ~table:"punt_acl" ~priority:1
        ~matches:
          [ fm "protocol" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:8 1))) ]
        (single "punt" []) ]
  in
  let resp = Stack.write stack { Request.updates = List.map Request.insert entries } in
  assert (Request.write_ok resp);
  Printf.printf "installed %d entries\n" (List.length entries);

  (* The contract holds: VRF 0 is rejected, dangling routes are rejected. *)
  let vrf0 =
    Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 0)) ]
      (single "no_action" [])
  in
  let dangling =
    Entry.make ~table:"route_table"
      ~matches:
        [ fm "vrf_id" (Entry.M_exact (bv16 7));
          fm "dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
      (single "set_nexthop" [ bv16 1 ])
  in
  List.iter
    (fun (label, e) ->
      let r = Stack.write stack { Request.updates = [ Request.insert e ] } in
      Format.printf "%s: %a@." label Status.pp (List.hd r.statuses))
    [ ("insert VRF 0", vrf0); ("insert route in unallocated VRF", dangling) ];

  (* p4-symbolic covers every installed entry of the loaded model,
     preferring packets that are actually forwarded. *)
  let enc = Symexec.encode program entries in
  let goals =
    Packetgen.entry_coverage_goals
      ~prefer:(Switchv_smt.Term.not_ enc.enc_dropped) enc
  in
  let result = Packetgen.generate enc goals in
  Printf.printf "symbolic coverage: %d/%d goals (%d uncoverable)\n" result.covered
    (List.length goals) result.uncoverable;

  (* And a covering packet forwards as the model says. *)
  let state = State.create () in
  List.iter (fun e -> ignore (State.insert state e)) entries;
  let route_packet =
    List.find_map
      (fun (tp : Packetgen.test_packet) ->
        if
          String.length tp.tp_goal >= 17
          && String.sub tp.tp_goal 0 17 = "entry:route_table"
          && tp.tp_bytes <> None
        then Option.map (fun b -> (tp.tp_port, b)) tp.tp_bytes
        else None)
      result.packets
  in
  match route_packet with
  | Some (port, bytes) ->
      let b = Stack.inject stack ~ingress_port:port bytes in
      Format.printf "route-covering packet: %a@." Interp.pp_behavior b;
      assert (b.b_egress = Some 9)
  | None -> failwith "no covering packet for the route table"
