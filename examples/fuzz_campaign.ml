(* Control-plane fuzzing in isolation (§4): stream fuzzed Write batches at
   a switch and let the oracle judge every response and read-back.

   The switch here accepts entries that violate the vrf_table entry
   restriction (the paper's Figure 2/3 example: reserved VRF 0 must not be
   programmable) — the oracle flags each acceptance.

   Run with: dune exec examples/fuzz_campaign.exe *)

module Middleblock = Switchv_sai.Middleblock
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Fuzzer = Switchv_fuzzer.Fuzzer
module Oracle = Switchv_oracle.Oracle
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Rng = Switchv_bitvec.Rng

let () =
  let program = Middleblock.program in
  let fault =
    Fault.make ~id:"DEMO-1" ~component:Fault.P4runtime_server
      (Fault.Accept_constraint_violation "vrf_table")
      "switch does not enforce the vrf_id != 0 restriction"
  in
  let stack = Stack.create ~faults:[ fault ] program in
  assert (Status.is_ok (Stack.push_p4info stack));

  let fuzzer = Fuzzer.create (Stack.info stack) (Rng.create 2022) in
  let oracle = Oracle.create (Stack.info stack) in

  let incidents = ref 0 in
  let updates_sent = ref 0 in
  for batch = 1 to 30 do
    let annotated = Fuzzer.next_batch fuzzer in
    let updates = List.map (fun (a : Fuzzer.annotated_update) -> a.update) annotated in
    updates_sent := !updates_sent + List.length updates;
    let resp = Stack.write stack { Request.updates } in
    let read_back = Stack.read stack in
    let found = Oracle.judge_batch oracle updates resp ~read_back in
    List.iter
      (fun i ->
        incr incidents;
        if !incidents <= 5 then Format.printf "batch %2d: %a@." batch Oracle.pp_incident i)
      found
  done;
  Printf.printf
    "\nsent %d updates in 30 batches; oracle flagged %d incidents (showing 5)\n"
    !updates_sent !incidents;
  Printf.printf "switch state: %d entries installed\n"
    (State.total (Stack.server_state stack));
  assert (!incidents > 0)
